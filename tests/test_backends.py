"""Execution backends: equivalence, determinism, caching, picklability.

The backend contract (repro.runtime.backends.base) promises that
serial, thread-pool and process-pool execution produce bit-identical
tuning results under the deterministic cost objective.  These tests
hold every backend to it, and cover the TrialCache and the harness's
bounded input cache.

The module-level transform below is what lets ProcessPoolBackend
pickle the ad-hoc program: its rule and metric functions resolve by
qualified name.  Suite programs instead pickle by provenance, covered
in TestProgramPickling.
"""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro.autotuner import Autotuner, ProgramTestHarness, TunerSettings
from repro.autotuner.candidate import Candidate
from repro.compiler.compile import compile_program
from repro.errors import ConfigError, TrainingError
from repro.lang.transform import Transform
from repro.lang.tunables import accuracy_variable
from repro.runtime.backends import (
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    TrialCache,
    TrialOutcome,
    backend_from_name,
    config_digest,
    execute_trial,
)
from repro.suite import get_benchmark

# ----------------------------------------------------------------------
# A picklable variable-accuracy transform (module-level functions only).
# ----------------------------------------------------------------------


def _pickmean_metric(outputs, inputs):
    estimate = float(outputs["est"])
    truth = float(np.mean(inputs["xs"]))
    return max(0.0, 1.0 - abs(estimate - truth) / (abs(truth) + 1e-9))


def make_pickmean_transform() -> Transform:
    transform = Transform(
        "pickmean",
        inputs=("xs",),
        outputs=("est",),
        accuracy_metric=_pickmean_metric,
        accuracy_bins=(0.5, 0.9, 0.99),
        tunables=[accuracy_variable("m", lo=1, hi=100000, default=4,
                                    direction=+1)],
    )
    transform.rule(outputs=("est",), inputs=("xs",),
                   name="sample_mean")(_sample_mean)
    transform.rule(outputs=("est",), inputs=("xs",),
                   name="exact_mean")(_exact_mean)
    return transform


def _sample_mean(ctx, xs):
    m = min(len(xs), int(ctx.param("m")))
    indices = ctx.rng.integers(0, len(xs), size=m)
    ctx.add_cost(m)
    return float(np.mean(xs[indices]))


def _exact_mean(ctx, xs):
    ctx.add_cost(2 * len(xs))
    return float(np.mean(xs))


def pickmean_inputs(n, rng):
    return {"xs": rng.normal(10.0, 1.0, size=max(2, int(n)))}


def quick_settings(**overrides) -> TunerSettings:
    defaults = dict(input_sizes=(16.0, 64.0), rounds_per_size=2,
                    mutation_attempts=6, min_trials=2, max_trials=5,
                    seed=7, initial_random=1, guided_max_evaluations=12,
                    accuracy_confidence=None)
    defaults.update(overrides)
    return TunerSettings(**defaults)


def tune_pickmean(backend=None, cache=None, **overrides):
    program, _ = compile_program(make_pickmean_transform())
    with ProgramTestHarness(program, pickmean_inputs, base_seed=3,
                            backend=backend, cache=cache) as harness:
        result = Autotuner(program, harness,
                           quick_settings(**overrides)).tune()
    return harness, result


BACKENDS = {
    "serial": lambda: SerialBackend(),
    "thread": lambda: ThreadPoolBackend(max_workers=3),
    "process": lambda: ProcessPoolBackend(max_workers=2),
}


# ----------------------------------------------------------------------
# Backend equivalence & determinism
# ----------------------------------------------------------------------
class TestBackendEquivalence:
    @pytest.fixture(scope="class")
    def serial_reference(self):
        harness, result = tune_pickmean(SerialBackend())
        return harness.trials_run, result

    @pytest.mark.parametrize("name", list(BACKENDS))
    def test_identical_tuning_results(self, name, serial_reference):
        """Every backend reproduces the serial frontier bit-for-bit."""
        serial_trials, serial_result = serial_reference
        harness, result = tune_pickmean(BACKENDS[name]())
        assert harness.trials_run == serial_trials
        assert result.trials_run == serial_trials
        assert result.frontier() == serial_result.frontier()
        assert result.unmet_bins == serial_result.unmet_bins
        assert {t: c.config for t, c in result.best_per_bin.items()} == \
            {t: c.config for t, c in serial_result.best_per_bin.items()}

    def test_batch_outcomes_align_with_requests(self):
        """run_batch returns outcomes positionally, whatever the order
        of completion."""
        program, _ = compile_program(make_pickmean_transform())
        harness = ProgramTestHarness(program, pickmean_inputs, base_seed=3)
        candidate = Candidate(program.default_config())
        requests = [harness.build_request(candidate, 32.0, i)
                    for i in range(8)]
        serial = SerialBackend().run_batch(program, requests)
        with ThreadPoolBackend(max_workers=4) as threaded:
            parallel = threaded.run_batch(program, requests)
        assert [(o.objective, o.accuracy, o.failed) for o in serial] == \
            [(o.objective, o.accuracy, o.failed) for o in parallel]

    def test_process_pool_per_program_pools(self):
        """Alternating programs keeps one warm pool per program (no
        teardown/respawn per switch), never serves another program's
        worker state, and evicts least-recently-used pools beyond the
        bound."""
        backend = ProcessPoolBackend(max_workers=2, chunk_size=2,
                                     max_pools=2)
        try:
            programs = []
            for _ in range(2):  # two distinct program objects
                program, _ = compile_program(make_pickmean_transform())
                programs.append(program)
                harness = ProgramTestHarness(program, pickmean_inputs,
                                             base_seed=3)
                candidate = Candidate(program.default_config())
                requests = [harness.build_request(candidate, 16.0, i)
                            for i in range(4)]
                parallel = backend.run_batch(program, requests)
                serial = SerialBackend().run_batch(program, requests)
                assert [(o.objective, o.accuracy) for o in parallel] == \
                    [(o.objective, o.accuracy) for o in serial]
                assert id(program) in backend._pools
            assert len(backend._pools) == 2  # both still warm
            # A third program exceeds max_pools: the least recently
            # used pool (program 0's) is closed.
            third, _ = compile_program(make_pickmean_transform())
            harness = ProgramTestHarness(third, pickmean_inputs,
                                         base_seed=3)
            candidate = Candidate(third.default_config())
            requests = [harness.build_request(candidate, 16.0, i)
                        for i in range(4)]
            backend.run_batch(third, requests)
            assert len(backend._pools) == 2
            assert id(programs[0]) not in backend._pools
            assert id(third) in backend._pools
        finally:
            backend.close()
        assert len(backend._pools) == 0

    def test_process_pool_max_pools_validated(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(max_pools=0)

    def test_trial_failure_carries_error(self):
        """A failed trial names the exception behind it, so callers
        can tell a broken program from an accuracy miss."""
        program, _ = compile_program(make_pickmean_transform())
        harness = ProgramTestHarness(program, pickmean_inputs,
                                     base_seed=3, cost_limit=0.5)
        candidate = Candidate(program.default_config())
        request = harness.build_request(candidate, 16.0, 0)
        outcome = execute_trial(program, request, cost_limit=0.5)
        assert outcome.failed
        assert "CostLimitExceeded" in outcome.error
        # The error survives the cache's JSON round trip.
        assert TrialOutcome.from_json(outcome.to_json()).error == \
            outcome.error

    def test_backend_from_name(self):
        assert isinstance(backend_from_name("serial"), SerialBackend)
        assert isinstance(backend_from_name("thread"), ThreadPoolBackend)
        backend = backend_from_name("process", max_workers=2)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.max_workers == 2
        with pytest.raises(ValueError):
            backend_from_name("quantum")


# ----------------------------------------------------------------------
# TrialCache
# ----------------------------------------------------------------------
class TestTrialCache:
    def test_hit_miss_counters(self):
        cache = TrialCache()
        key = TrialCache.key("abc", 16.0, 0, 3)
        assert cache.get(key) is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.put(key, TrialOutcome(objective=1.5, accuracy=0.9))
        assert cache.get(key) == TrialOutcome(objective=1.5, accuracy=0.9)
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1

    def test_objective_and_cost_limit_namespace_keys(self):
        assert TrialCache.key("d", 8.0, 1, 0, objective="cost") != \
            TrialCache.key("d", 8.0, 1, 0, objective="time")
        # A trial's pass/fail status depends on the cost budget, so
        # outcomes measured under different limits must never alias.
        assert TrialCache.key("d", 8.0, 1, 0, cost_limit=None) != \
            TrialCache.key("d", 8.0, 1, 0, cost_limit=1e6)
        assert TrialCache.key("d", 8.0, 1, 0, cost_limit=1e6) != \
            TrialCache.key("d", 8.0, 1, 0, cost_limit=2e6)

    def test_large_sizes_never_collide(self):
        # '%g' formatting would fold 1048576 and 1048580 together.
        assert TrialCache.key("d", 1048576.0, 0, 0) != \
            TrialCache.key("d", 1048580.0, 0, 0)

    def test_program_namespaces_keys(self):
        # Different programs with identically-serialising configs must
        # not share measurements.
        assert TrialCache.key("d", 8.0, 1, 0, program="poisson") != \
            TrialCache.key("d", 8.0, 1, 0, program="helmholtz")

    def test_malformed_entries_skipped_on_load(self, tmp_path):
        path = tmp_path / "mixed.json"
        good = TrialCache.key("aa", 4.0, 0, 0)
        path.write_text(json.dumps({"version": 1, "entries": {
            "bad1": {"accuracy": 0.5},             # missing objective
            "bad2": None,                          # not a mapping
            "bad3": {"objective": None, "accuracy": 0.1},
            good: {"objective": 2.0, "accuracy": 0.9}}}))
        cache = TrialCache(path)  # must not raise
        assert len(cache) == 1
        assert cache.get(good) == TrialOutcome(objective=2.0, accuracy=0.9)

    def test_max_entries_lru_eviction(self):
        """The bound evicts least-recently-*used* entries, so a
        long-lived serving/tuning process cannot grow without bound."""
        cache = TrialCache(max_entries=2)
        keys = [TrialCache.key(f"d{i}", 1.0, 0, 0) for i in range(3)]
        cache.put(keys[0], TrialOutcome(objective=1.0, accuracy=0.1))
        cache.put(keys[1], TrialOutcome(objective=2.0, accuracy=0.2))
        assert cache.get(keys[0]) is not None  # refresh key 0
        cache.put(keys[2], TrialOutcome(objective=3.0, accuracy=0.3))
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get(keys[1]) is None      # LRU victim
        assert cache.get(keys[0]) is not None  # refreshed, survived
        assert cache.get(keys[2]) is not None

    def test_max_entries_applies_to_loads(self, tmp_path):
        path = tmp_path / "big.json"
        entries = {TrialCache.key(f"d{i}", 1.0, 0, 0):
                   {"objective": float(i), "accuracy": 0.5}
                   for i in range(10)}
        path.write_text(json.dumps({"version": 1, "entries": entries}))
        cache = TrialCache(path, max_entries=4)
        assert len(cache) == 4
        assert cache.evictions == 6

    def test_max_entries_validated(self):
        with pytest.raises(ValueError):
            TrialCache(max_entries=0)
        TrialCache(max_entries=None)  # unbounded stays allowed

    def test_rewriting_a_key_does_not_evict(self):
        cache = TrialCache(max_entries=2)
        key = TrialCache.key("dd", 1.0, 0, 0)
        cache.put(key, TrialOutcome(objective=1.0, accuracy=0.1))
        cache.put(key, TrialOutcome(objective=2.0, accuracy=0.2))
        assert len(cache) == 1
        assert cache.evictions == 0
        assert cache.get(key).objective == 2.0

    def test_time_objective_bypasses_cache(self):
        """Wall-clock measurements are not content-determined; the
        harness must re-execute them even with a cache attached."""
        program, _ = compile_program(make_pickmean_transform())
        cache = TrialCache()
        harness = ProgramTestHarness(program, pickmean_inputs,
                                     objective="time", base_seed=3,
                                     cache=cache)
        candidate = Candidate(program.default_config())
        harness.ensure_trials(candidate, 16.0, 2)
        assert harness.trials_executed == 2
        assert len(cache) == 0
        other = Candidate(program.default_config())
        harness.ensure_trials(other, 16.0, 2)
        assert harness.trials_executed == 4  # no reuse under "time"

    def test_persistence_round_trip(self, tmp_path):
        path = tmp_path / "trials.json"
        cache = TrialCache(path)
        key = TrialCache.key("deadbeef", 64.0, 2, 11)
        outcome = TrialOutcome(objective=3.25, accuracy=0.875,
                               failed=False, wall_time=0.125)
        cache.put(key, outcome)
        saved = cache.save()
        assert saved == str(path)
        reloaded = TrialCache(path)
        assert reloaded.get(key) == outcome
        assert len(reloaded) == 1

    def test_corrupt_store_ignored_at_construction(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json at all")
        cache = TrialCache(path)  # must not raise: it's only a hint
        assert len(cache) == 0
        with pytest.raises(ValueError):
            cache.load(path)  # explicit loads still surface the damage

    def test_incompatible_version_ignored(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text('{"version": 999, "entries": {"k": {}}}')
        cache = TrialCache(path)
        assert len(cache) == 0

    def test_cache_eliminates_reexecution_across_runs(self, tmp_path):
        """A second tuning run against a warm cache executes nothing
        new, yet reports the identical result."""
        path = tmp_path / "cache.json"
        cache = TrialCache(path)
        first_harness, first = tune_pickmean(cache=cache)
        # Even the first run deduplicates: mutations that land on a
        # previously-seen configuration reuse its measurements.
        assert 0 < first_harness.trials_executed <= first_harness.trials_run
        cache.save()

        warm = TrialCache(path)
        second_harness, second = tune_pickmean(cache=warm)
        assert second_harness.trials_executed == 0
        assert warm.hits == second_harness.trials_run
        assert second.trials_run == first.trials_run
        assert second.frontier() == first.frontier()

    def test_cache_shared_between_identical_configs(self):
        """Two candidates with equal configs share measurements: the
        content address ignores candidate identity."""
        program, _ = compile_program(make_pickmean_transform())
        cache = TrialCache()
        harness = ProgramTestHarness(program, pickmean_inputs,
                                     base_seed=3, cache=cache)
        first = Candidate(program.default_config())
        second = Candidate(program.default_config())
        assert first.candidate_id != second.candidate_id
        harness.ensure_trials(first, 16.0, 3)
        assert harness.trials_executed == 3
        harness.ensure_trials(second, 16.0, 3)
        assert harness.trials_executed == 3  # all three were cache hits
        assert first.results.objectives(16.0) == \
            second.results.objectives(16.0)


# ----------------------------------------------------------------------
# Harness internals
# ----------------------------------------------------------------------
class TestHarness:
    def test_input_cache_lru_bound(self):
        program, _ = compile_program(make_pickmean_transform())
        harness = ProgramTestHarness(program, pickmean_inputs,
                                     base_seed=3, input_cache_size=4)
        for trial_index in range(10):
            harness.training_input(16.0, trial_index)
        assert len(harness._input_cache) == 4
        # Most recent entries survive; evicted ones regenerate equal.
        assert (16.0, 9) in harness._input_cache
        early = harness.training_input(16.0, 0)
        again = harness.training_input(16.0, 0)
        assert np.array_equal(early["xs"], again["xs"])

    def test_input_cache_size_validated(self):
        program, _ = compile_program(make_pickmean_transform())
        with pytest.raises(ValueError):
            ProgramTestHarness(program, pickmean_inputs,
                               input_cache_size=0)

    def test_evicted_inputs_keep_trials_paired(self):
        """Eviction must not change measurements: regenerated inputs
        are identical, so a tiny cache tunes identically."""
        _, unbounded = tune_pickmean()
        program, _ = compile_program(make_pickmean_transform())
        harness = ProgramTestHarness(program, pickmean_inputs,
                                     base_seed=3, input_cache_size=1)
        result = Autotuner(program, harness, quick_settings()).tune()
        assert result.frontier() == unbounded.frontier()
        assert result.trials_run == unbounded.trials_run

    def test_objective_mismatch_raises(self):
        program, _ = compile_program(make_pickmean_transform())
        harness = ProgramTestHarness(program, pickmean_inputs,
                                     objective="cost")
        with pytest.raises(TrainingError, match="objective"):
            Autotuner(program, harness,
                      quick_settings(objective="time"))

    def test_unknown_settings_objective_raises(self):
        # Malformed settings now fail at construction (ConfigError),
        # before any tuner or harness exists.
        with pytest.raises(ConfigError, match="objective"):
            quick_settings(objective="energy")

    def test_time_objective_rejects_parallel_backends(self):
        program, _ = compile_program(make_pickmean_transform())
        with pytest.raises(ValueError, match="serial"):
            ProgramTestHarness(program, pickmean_inputs,
                               objective="time",
                               backend=ThreadPoolBackend(max_workers=2))
        # Serial (explicit or default) stays allowed.
        ProgramTestHarness(program, pickmean_inputs, objective="time",
                           backend=SerialBackend())

    def test_batch_dedups_identical_configs(self):
        """Equal-config candidates in one batch execute each paired
        trial once; the outcome fans out to every requester."""
        program, _ = compile_program(make_pickmean_transform())
        harness = ProgramTestHarness(program, pickmean_inputs,
                                     base_seed=3, cache=TrialCache())
        a = Candidate(program.default_config())
        b = Candidate(program.default_config())
        harness.run_trials([(a, 16.0), (b, 16.0)])
        assert harness.trials_executed == 1
        assert harness.trials_run == 2
        assert a.results.objectives(16.0) == b.results.objectives(16.0)

    def test_generator_namespaces_cache(self):
        """The same program tuned with a different input generator
        must not reuse the first generator's measurements."""
        program, _ = compile_program(make_pickmean_transform())
        cache = TrialCache()

        def shifted_inputs(n, rng):
            return {"xs": rng.normal(50.0, 1.0, size=max(2, int(n)))}

        first = ProgramTestHarness(program, pickmean_inputs,
                                   base_seed=3, cache=cache)
        first.ensure_trials(Candidate(program.default_config()), 16.0, 2)
        second = ProgramTestHarness(program, shifted_inputs,
                                    base_seed=3, cache=cache)
        second.ensure_trials(Candidate(program.default_config()), 16.0, 2)
        assert second.trials_executed == 2  # no cross-generator hits

    def test_run_trials_interleaves_candidates(self):
        """A batch mixing candidates assigns per-candidate paired
        trial indices, continuing each candidate's sequence."""
        program, _ = compile_program(make_pickmean_transform())
        harness = ProgramTestHarness(program, pickmean_inputs, base_seed=3)
        a = Candidate(program.default_config())
        b = Candidate(program.default_config())
        harness.run_trials([(a, 16.0), (b, 16.0), (a, 16.0)])
        assert a.results.count(16.0) == 2
        assert b.results.count(16.0) == 1
        # Paired trials: trial 0 of both candidates saw the same input
        # and seed, so equal configs measure identically.
        assert a.results.objectives(16.0)[0] == \
            b.results.objectives(16.0)[0]


# ----------------------------------------------------------------------
# Program picklability (process-backend transport)
# ----------------------------------------------------------------------
class TestProgramPickling:
    def test_suite_program_pickles_by_provenance(self):
        spec = get_benchmark("poisson")
        program, _ = spec.compile()
        assert program.provenance == ("benchmark", "poisson")
        clone = pickle.loads(pickle.dumps(program))
        assert clone.root == program.root
        assert sorted(clone.instances) == sorted(program.instances)
        rng = np.random.default_rng(0)
        inputs = spec.generate(7, rng)
        result = clone.execute(inputs, 7.0, clone.default_config(), seed=1)
        reference = program.execute(inputs, 7.0,
                                    program.default_config(), seed=1)
        assert result.cost == reference.cost

    def test_module_level_program_pickles_directly(self):
        program, _ = compile_program(make_pickmean_transform())
        assert program.provenance is None
        clone = pickle.loads(pickle.dumps(program))
        assert clone.root == "pickmean"

    def test_process_backend_runs_suite_program(self):
        """End-to-end: provenance-pickled program, worker recompiles,
        outcomes match serial execution exactly."""
        spec = get_benchmark("poisson")
        program, _ = spec.compile()
        harness = ProgramTestHarness(program, spec.generate, base_seed=5,
                                     cost_limit=spec.cost_limit)
        candidate = Candidate(program.default_config())
        requests = [harness.build_request(candidate, 7.0, i)
                    for i in range(4)]
        serial = SerialBackend().run_batch(
            program, requests, cost_limit=spec.cost_limit)
        with ProcessPoolBackend(max_workers=2, chunk_size=2) as backend:
            parallel = backend.run_batch(
                program, requests, cost_limit=spec.cost_limit)
        assert [(o.objective, o.accuracy, o.failed) for o in serial] == \
            [(o.objective, o.accuracy, o.failed) for o in parallel]

    def test_config_digest_is_content_addressed(self):
        program, _ = compile_program(make_pickmean_transform())
        one = program.default_config()
        two = program.default_config()
        assert one is not two
        assert config_digest(one) == config_digest(two)
