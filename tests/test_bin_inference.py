"""Tests for compiler bin inference and mutator-pool preferences."""

import numpy as np
import pytest

from repro.autotuner.candidate import Candidate
from repro.autotuner.mutators import MutatorPool
from repro.compiler.compile import compile_program
from repro.config.parameters import (
    ParameterSpace,
    ScalarParam,
    SwitchParam,
)
from repro.errors import ConfigError, LanguageError
from repro.lang.transform import CallSite, Transform


def make_callee(bins=(0.5, 0.9)):
    def metric(outputs, inputs):
        return 1.0

    callee = Transform("callee", inputs=("x",), outputs=("y",),
                       accuracy_metric=metric, accuracy_bins=bins)
    callee.rule(outputs=("y",), inputs=("x",))(
        lambda ctx, x: (x, ctx.accuracy_target))
    return callee


class TestBinInference:
    def test_explicit_call_accuracy_becomes_bin(self):
        callee = make_callee()
        caller = Transform("caller", inputs=("x",), outputs=("z",),
                           calls=[CallSite("sub", "callee",
                                           accuracy=0.7)])

        @caller.rule(outputs=("z",), inputs=("x",))
        def rule(ctx, x):
            return ctx.call("sub", {"x": x}, n=ctx.n)["y"]

        program, info = compile_program(caller, [callee])
        assert callee.accuracy_bins == (0.5, 0.7, 0.9)
        assert "callee@0.7" in program.instances
        # The call dispatches to exactly the inferred bin.
        result = program.execute({"x": 1}, 4, program.default_config())
        assert result.outputs["z"] == (1, 0.7)

    def test_existing_bin_not_duplicated(self):
        callee = make_callee()
        caller = Transform("caller", inputs=("x",), outputs=("z",),
                           calls=[CallSite("sub", "callee",
                                           accuracy=0.9)])

        @caller.rule(outputs=("z",), inputs=("x",))
        def rule(ctx, x):
            return ctx.call("sub", {"x": x}, n=ctx.n)["y"]

        compile_program(caller, [callee])
        assert callee.accuracy_bins == (0.5, 0.9)

    def test_add_bin_keeps_direction_order(self):
        from repro.lang.metrics import AccuracyMetric
        metric = AccuracyMetric(lambda o, i: 1.0, higher_is_better=False)
        transform = Transform("t", inputs=("x",), outputs=("y",),
                              accuracy_metric=metric,
                              accuracy_bins=(1.5, 1.01))
        transform.add_accuracy_bin(1.2)
        assert transform.accuracy_bins == (1.5, 1.2, 1.01)

    def test_add_bin_requires_metric(self):
        transform = Transform("t", inputs=("x",), outputs=("y",))
        with pytest.raises(LanguageError):
            transform.add_accuracy_bin(0.5)


class TestPoolPreference:
    def space(self):
        return ParameterSpace([
            ScalarParam("root@main.cut", 1, 100, 10),
            ScalarParam("sub@0.5.cut", 1, 100, 10),
        ])

    def test_preference_biases_selection(self):
        space = self.space()
        pool = MutatorPool.from_space(space, include_meta=False)
        pool.prefer("root@main.", weight=50.0)
        candidate = Candidate(space.default_config())
        rng = np.random.default_rng(0)
        picks = [pool.random(candidate, 8, rng).param.name
                 for _ in range(200)]
        root_fraction = sum(1 for name in picks
                            if name.startswith("root@main.")) / len(picks)
        assert root_fraction > 0.9

    def test_uniform_without_preference(self):
        space = self.space()
        pool = MutatorPool.from_space(space, include_meta=False)
        candidate = Candidate(space.default_config())
        rng = np.random.default_rng(1)
        picks = [pool.random(candidate, 8, rng).param.name
                 for _ in range(300)]
        root_fraction = sum(1 for name in picks
                            if name.startswith("root@main.")) / len(picks)
        assert 0.35 < root_fraction < 0.65

    def test_invalid_weight(self):
        pool = MutatorPool.from_space(self.space(), include_meta=False)
        with pytest.raises(ConfigError):
            pool.prefer("root@main.", weight=0.0)
