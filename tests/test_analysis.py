"""The whole-program static contract analyzer (``repro.analysis``).

Every documented finding code is proven to *fire* here, on fixture
transforms carrying exactly one violation each, with the finding's
``file:line`` asserted against this file's source — and proven to stay
*quiet* on all six registered suite benchmarks, which is the invariant
the CI Analyze step enforces.
"""

from __future__ import annotations

import json
import os
import random
import time

import numpy as np
import pytest

from repro.analysis import (
    ERROR,
    FINDING_CODES,
    INFO,
    WARNING,
    load_baseline,
    partition_findings,
    search_space_size,
)
from repro.contracts import contract_of, kernel
from repro.errors import ReproError
from repro.lang import (
    accuracy_metric,
    accuracy_variable,
    analyze,
    call,
    cutoff,
    describe,
    precision,
    rule,
    transform,
)
from repro.lang.check import main
from repro.lang.targets import load_example_targets

THIS_FILE = os.path.abspath(__file__)
EXAMPLES_DIR = os.path.join(os.path.dirname(THIS_FILE), os.pardir,
                            "examples")

SUITE = ["binpacking", "clustering", "helmholtz", "imagecompression",
         "poisson", "preconditioner"]


def line_of(snippet: str) -> int:
    """1-based line number of the fixture line containing ``snippet``."""
    with open(THIS_FILE, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if snippet in line and "line_of(" not in line:
                return lineno
    raise AssertionError(f"marker not found: {snippet!r}")


def findings_for(report, code):
    return [f for f in report if f.code == code]


def assert_located_here(finding, snippet):
    assert finding.location is not None
    assert os.path.abspath(finding.location.filename) == THIS_FILE
    assert finding.location.lineno == line_of(snippet)


# ----------------------------------------------------------------------
# Violation fixtures: one transform per contract breach.
# ----------------------------------------------------------------------
_SCRATCH: dict = {}


def impure_helper(xs):
    _SCRATCH["calls"] = 1  # noqa-analysis: global-store
    stamp = time.time()  # noqa-analysis: wall-clock
    noise = random.random()  # noqa-analysis: unrouted-random
    handle = open(os.devnull)  # noqa-analysis: file-io
    handle.close()
    return float(np.mean(xs)) + 0.0 * (stamp + noise)


@transform(inputs=("xs",), outputs=("est",))
class impure_program:
    @rule
    def impure_rule(ctx, xs):
        return impure_helper(xs)


@kernel(dtype_preserving=True)
def widening_kernel(xs):
    ys = np.asarray(xs, dtype=float)  # noqa-analysis: widening-coerce
    pad = np.zeros(3)  # noqa-analysis: dtypeless-alloc
    scaled = np.float64(2.0) * ys  # noqa-analysis: f64-literal
    return ys + scaled + float(pad.sum())


@transform(inputs=("xs",), outputs=("ys",))
class widening_program:
    @rule
    def widening_rule(ctx, xs):
        return widening_kernel(xs)


@transform(inputs=("xs",), outputs=("est",))
class dead_tunable_program:
    threshold = cutoff(lo=1.0, hi=10.0, default=2.0)

    @rule
    def dead_tunable_rule(ctx, xs):  # noqa-analysis: dead-rule
        return float(np.sum(xs))


@kernel(dtype_preserving=True)  # stacked defaults to False
def scalar_only_kernel(xs):  # noqa-analysis: scalar-kernel
    return xs * 2.0


@transform(inputs=("xs",), outputs=("ys",), batchable=True)
class false_batchable_program:
    @rule
    def batch_rule(ctx, xs):
        return scalar_only_kernel(xs)


@kernel(stacked=True)  # dtype_preserving defaults to False
def widening_stacked_kernel(xs):  # noqa-analysis: unpreserving-kernel
    return xs * 2.0


@transform(inputs=("xs",), outputs=("ys",))
class false_precision_program:
    working_dtype = precision()

    @rule
    def cast_rule(ctx, xs):
        return widening_stacked_kernel(xs)


@transform(inputs=("xs",), outputs=("est",), accuracy_bins=(0.5, 0.9))
class binned_helper:
    samples = accuracy_variable(lo=1, hi=100, default=4, direction=+1)

    @accuracy_metric
    def always_right(outputs, inputs):
        return 1.0

    @rule
    def sample_rule(ctx, xs):
        count = int(ctx.param("samples"))
        ctx.add_cost(count)
        return float(np.mean(xs[:count]))


@transform(inputs=("xs",), outputs=("est",))
class pinned_root:
    helper = call("binned_helper", accuracy=0.9)

    @rule
    def dispatch_rule(ctx, xs):
        return ctx.call("helper", {"xs": xs})["est"]


# ----------------------------------------------------------------------
# Pass 1: purity/determinism (REP1xx)
# ----------------------------------------------------------------------
class TestPurityFindings:
    @pytest.fixture(scope="class")
    def report(self):
        return analyze(impure_program)

    def test_global_store_fires_rep101(self, report):
        (finding,) = findings_for(report, "REP101")
        assert finding.severity == ERROR
        assert finding.transform == "impure_program"
        assert finding.rule == "impure_rule"
        assert "_SCRATCH" in finding.message
        assert_located_here(finding, "noqa-analysis: global-store")

    def test_wall_clock_fires_rep102(self, report):
        (finding,) = findings_for(report, "REP102")
        assert finding.severity == ERROR
        assert "time.time" in finding.message
        assert_located_here(finding, "noqa-analysis: wall-clock")

    def test_unrouted_random_fires_rep103(self, report):
        (finding,) = findings_for(report, "REP103")
        assert finding.severity == ERROR
        assert "ctx.rng" in finding.message
        assert_located_here(finding, "noqa-analysis: unrouted-random")

    def test_file_io_fires_rep104(self, report):
        (finding,) = findings_for(report, "REP104")
        assert finding.severity == ERROR
        assert "open()" in finding.message
        assert_located_here(finding, "noqa-analysis: file-io")


# ----------------------------------------------------------------------
# Pass 2: dtype flow (REP2xx) — fixture kernel registered
# dtype_preserving, so the lint covers it outside the substrate tree.
# ----------------------------------------------------------------------
class TestDtypeFlowFindings:
    @pytest.fixture(scope="class")
    def report(self):
        return analyze(widening_program)

    def test_widening_coercion_fires_rep201(self, report):
        (finding,) = findings_for(report, "REP201")
        assert finding.severity == WARNING
        assert "as_float" in finding.message
        assert_located_here(finding, "noqa-analysis: widening-coerce")

    def test_dtypeless_allocation_fires_rep202(self, report):
        (finding,) = findings_for(report, "REP202")
        assert finding.severity == WARNING
        assert "np.zeros" in finding.message
        assert_located_here(finding, "noqa-analysis: dtypeless-alloc")

    def test_float64_literal_fires_rep203(self, report):
        (finding,) = findings_for(report, "REP203")
        assert finding.severity == WARNING
        assert_located_here(finding, "noqa-analysis: f64-literal")

    def test_no_purity_errors_on_this_fixture(self, report):
        assert report.errors == []


# ----------------------------------------------------------------------
# Pass 3: pledge verification (REP3xx)
# ----------------------------------------------------------------------
class TestPledgeFindings:
    def test_false_batchable_pledge_fires_rep301(self):
        report = analyze(false_batchable_program)
        (finding,) = findings_for(report, "REP301")
        assert finding.severity == ERROR
        assert finding.rule == "batch_rule"
        assert "scalar_only_kernel" in finding.message
        assert "stacked=False" in finding.message
        assert_located_here(finding, "noqa-analysis: scalar-kernel")

    def test_false_precision_pledge_fires_rep302(self):
        report = analyze(false_precision_program)
        (finding,) = findings_for(report, "REP302")
        assert finding.severity == ERROR
        assert "widening_stacked_kernel" in finding.message
        assert "dtype_preserving=False" in finding.message
        assert_located_here(finding, "noqa-analysis: unpreserving-kernel")

    def test_contracts_registry_round_trip(self):
        contract = contract_of(scalar_only_kernel)
        assert contract is not None
        assert not contract.stacked and contract.dtype_preserving
        assert contract_of(impure_helper) is None


# ----------------------------------------------------------------------
# Pass 4: config space (REP4xx, REP001)
# ----------------------------------------------------------------------
class TestConfigSpaceFindings:
    def test_dead_tunable_fires_rep401(self):
        report = analyze(dead_tunable_program)
        (finding,) = findings_for(report, "REP401")
        assert finding.severity == WARNING
        assert "'threshold'" in finding.message
        assert_located_here(finding, "noqa-analysis: dead-rule")

    def test_read_tunable_is_not_dead(self):
        report = analyze(binned_helper)
        assert findings_for(report, "REP401") == []

    def test_unreachable_instance_fires_rep402(self):
        report = analyze(pinned_root, (binned_helper,))
        findings = findings_for(report, "REP402")
        assert len(findings) == 1
        assert findings[0].severity == WARNING
        assert "binned_helper@0.5" in findings[0].message
        assert "@0.9" not in findings[0].message

    def test_precision_tunable_is_exempt_from_rep401(self):
        report = analyze(false_precision_program)
        assert findings_for(report, "REP401") == []

    def test_search_space_estimate_fires_rep001(self):
        report = analyze(dead_tunable_program)
        (finding,) = findings_for(report, "REP001")
        assert finding.severity == INFO
        assert "~10^" in finding.message

    def test_search_space_counts_continuous_separately(self):
        from repro.lang.targets import resolve_program
        space = resolve_program("poisson").space
        log10, continuous = search_space_size(space)
        assert log10 > 10.0
        assert continuous == 6  # one omega cutoff per instance


# ----------------------------------------------------------------------
# Every documented code fires
# ----------------------------------------------------------------------
class TestCodeCoverage:
    def test_every_documented_code_is_proven_to_fire(self):
        import fixtures_concurrency
        from test_concurrency_analysis import _build_nested_program

        from repro.analysis import analyze_modules

        fired = set()
        for target, extras in [(impure_program, ()),
                               (widening_program, ()),
                               (dead_tunable_program, ()),
                               (false_batchable_program, ()),
                               (false_precision_program, ()),
                               (pinned_root, (binned_helper,)),
                               (_build_nested_program, ())]:
            fired.update(f.code for f in analyze(target, extras))
        fired.update(f.code
                     for f in analyze_modules([fixtures_concurrency]))
        assert fired == set(FINDING_CODES)


# ----------------------------------------------------------------------
# CallGraph edge cases: lambdas, closures, decorators, partial
# ----------------------------------------------------------------------
def _edge_plain(x):
    return x + 1


_EDGE_LAMBDA = lambda x: _edge_plain(x)  # noqa: E731


def _edge_outer():
    offset = 2

    def inner(x):
        return _edge_plain(x) + offset
    return inner


def _edge_decorator(fn):
    import functools

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        return fn(*args, **kwargs)
    return wrapper


@_edge_decorator
def _edge_decorated(x):
    return _edge_plain(x)


_EDGE_TWIN_A, _EDGE_TWIN_B = (lambda: 1), (lambda: 2)


class TestCallGraphEdgeCases:
    @pytest.fixture()
    def graph(self):
        from repro.analysis import CallGraph
        return CallGraph()

    def test_lambda_resolves_with_its_callees(self, graph):
        import ast
        info = graph.info(_EDGE_LAMBDA)
        assert info is not None
        assert isinstance(info.node, ast.Lambda)
        callees = [callee for callee, _ in graph.callees(info)]
        assert _edge_plain in callees

    def test_two_lambdas_on_one_line_are_explicitly_skipped(self, graph):
        # ("<lambda>", lineno) cannot distinguish them; the graph
        # refuses to guess rather than mis-attribute a body.
        assert graph.info(_EDGE_TWIN_A) is None
        assert graph.info(_EDGE_TWIN_B) is None

    def test_nested_closure_resolves_cell_contents(self, graph):
        inner = _edge_outer()
        info = graph.info(inner)
        assert info is not None
        assert info.namespace()["offset"] == 2
        callees = [callee for callee, _ in graph.callees(info)]
        assert _edge_plain in callees

    def test_decorated_function_resolves_to_wrapped_body(self, graph):
        info = graph.info(_edge_decorated)
        assert info is not None
        assert info.node.name == "_edge_decorated"
        callees = [callee for callee, _ in graph.callees(info)]
        assert _edge_plain in callees

    def test_functools_partial_unwraps_to_its_function(self, graph):
        import functools
        bound = functools.partial(_edge_plain, 3)
        info = graph.info(bound)
        assert info is not None
        assert info.node.name == "_edge_plain"

    def test_reachability_crosses_every_edge_kind(self, graph):
        import functools
        inner = _edge_outer()
        roots = [_EDGE_LAMBDA, inner, _edge_decorated,
                 functools.partial(_edge_plain, 3)]
        names = {info.node.name if hasattr(info.node, "name")
                 else "<lambda>"
                 for info in graph.reachable(roots)}
        assert "_edge_plain" in names  # reached through all four


# ----------------------------------------------------------------------
# The suite invariant: all six benchmarks analyze clean
# ----------------------------------------------------------------------
class TestSuiteIsClean:
    @pytest.mark.parametrize("name", SUITE)
    def test_benchmark_has_no_errors_or_warnings(self, name):
        report = analyze(name)
        assert report.errors == []
        assert report.warnings == []
        assert findings_for(report, "REP001")


# ----------------------------------------------------------------------
# Baseline: warnings suppressible, errors never
# ----------------------------------------------------------------------
class TestBaseline:
    def test_matching_warning_is_suppressed(self):
        report = analyze(dead_tunable_program)
        baseline = [{"code": "REP401", "path": "test_analysis.py",
                     "contains": "threshold"}]
        active, suppressed = partition_findings(report, baseline)
        assert [f.code for f in suppressed] == ["REP401"]
        assert all(f.code != "REP401" for f in active)

    def test_non_matching_entry_suppresses_nothing(self):
        report = analyze(dead_tunable_program)
        baseline = [{"code": "REP401", "path": "some/other/file.py"}]
        active, suppressed = partition_findings(report, baseline)
        assert suppressed == []
        assert any(f.code == "REP401" for f in active)

    def test_errors_are_never_baselinable(self):
        report = analyze(false_batchable_program)
        active, suppressed = partition_findings(
            report, [{"code": "REP301"}])
        assert suppressed == []
        assert any(f.code == "REP301" for f in active)

    def test_load_baseline_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(
            {"accepted": [{"code": "REP202", "path": "cg.py"}]}))
        assert load_baseline(str(path)) == [
            {"code": "REP202", "path": "cg.py"}]

    def test_load_baseline_rejects_bad_shapes(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("[]")
        with pytest.raises(ReproError, match="accepted"):
            load_baseline(str(path))
        path.write_text(json.dumps({"accepted": [{"path": "x.py"}]}))
        with pytest.raises(ReproError, match="code"):
            load_baseline(str(path))
        with pytest.raises(ReproError, match="cannot read"):
            load_baseline(str(tmp_path / "missing.json"))

    def test_checked_in_baseline_parses(self):
        repo_root = os.path.join(os.path.dirname(THIS_FILE), os.pardir)
        path = os.path.join(repo_root, "ANALYSIS_BASELINE.json")
        assert isinstance(load_baseline(path), list)


# ----------------------------------------------------------------------
# describe() renders the new dimensions (satellite b)
# ----------------------------------------------------------------------
class TestDescribe:
    def test_precision_tunable_renders_distinctly(self):
        text = describe("preconditioner")
        assert "precision over" in text
        assert "float32" in text
        assert "(executor casts inputs)" in text

    def test_search_space_line_is_present(self):
        text = describe("preconditioner")
        assert "search space:" in text
        assert "~10^" in text


# ----------------------------------------------------------------------
# Shared target resolution (satellite c)
# ----------------------------------------------------------------------
class TestExampleTargets:
    def test_module_level_transforms_are_discovered(self):
        path = os.path.join(EXAMPLES_DIR, "quickstart.py")
        names = [name for name, _, _ in load_example_targets(path)]
        assert "approxmean" in names

    def test_annotated_factories_are_discovered(self):
        path = os.path.join(EXAMPLES_DIR, "signal_scaling.py")
        names = [name for name, _, _ in load_example_targets(path)]
        assert "make_smoother" in names

    def test_demo_drivers_are_not_called(self):
        path = os.path.join(EXAMPLES_DIR, "signal_scaling.py")
        names = [name for name, _, _ in load_example_targets(path)]
        assert "main" not in names


# ----------------------------------------------------------------------
# The CLI gate (python -m repro.lang)
# ----------------------------------------------------------------------
class TestAnalyzeCLI:
    def test_analyze_mode_is_clean_over_a_benchmark(self):
        lines = []
        assert main(["--analyze", "preconditioner"],
                    log=lines.append) == 0
        assert lines[0].startswith("preconditioner: ok (0 errors")
        assert any("REP001" in line for line in lines)

    def test_analyze_json_is_machine_readable(self):
        lines = []
        assert main(["--analyze", "--json", "preconditioner"],
                    log=lines.append) == 0
        payload = json.loads("\n".join(lines))
        assert payload["mode"] == "analyze"
        target = payload["targets"]["preconditioner"]
        assert target["ok"] and target["errors"] == 0
        assert any(f["code"] == "REP001" for f in target["findings"])

    def test_check_json_is_machine_readable(self):
        lines = []
        assert main(["--json", "preconditioner"], log=lines.append) == 0
        payload = json.loads("\n".join(lines))
        assert payload["mode"] == "check"
        assert payload["targets"]["preconditioner"]["ok"]

    def test_analyze_main_reports_violations(self, monkeypatch):
        from repro.suite.registry import BenchmarkSpec

        spec = BenchmarkSpec(name="impure",
                             build=lambda: (impure_program, ()),
                             generate=lambda n, rng: {},
                             training_sizes=(4.0,), cost_limit=None,
                             description="fixture")
        monkeypatch.setattr("repro.suite.registry._load_specs",
                            lambda: {"impure": spec})
        lines = []
        assert main(["--analyze"], log=lines.append) == 1
        assert any("FAILED" in line for line in lines)
        assert any("REP102" in line for line in lines)

    def test_baseline_flag_requires_analyze_mode(self):
        lines = []
        assert main(["--baseline", "x.json", "preconditioner"],
                    log=lines.append) == 1
        assert any("--analyze" in line for line in lines)

    def test_missing_baseline_file_fails_loudly(self, tmp_path):
        lines = []
        missing = str(tmp_path / "missing.json")
        assert main(["--analyze", "--baseline", missing,
                     "preconditioner"], log=lines.append) == 1
        assert any("cannot read" in line for line in lines)
