"""Tests for the multigrid substrate: transfers, SOR, Helmholtz, cycles."""

import numpy as np
import pytest

from repro.multigrid.cycles import CycleShape, extract_cycle_shape, \
    render_cycle
from repro.multigrid.grids import (
    coarse_size,
    is_grid_size,
    prolong,
    restrict_full_weighting,
)
from repro.multigrid.helmholtz3d import (
    apply_helmholtz_3d,
    face_coefficients,
    helmholtz_banded,
    manufactured_helmholtz_problem,
    restrict_coefficients,
)
from repro.multigrid.relax import sor_helmholtz_3d, sor_poisson_2d
from repro.linalg.banded import banded_cholesky_factor, banded_cholesky_solve
from repro.linalg.poisson_ops import apply_laplacian_2d
from repro.runtime.trace import ExecutionTrace


class TestGridSizes:
    def test_is_grid_size(self):
        assert [n for n in range(1, 70) if is_grid_size(n)] == \
            [1, 3, 7, 15, 31, 63]

    def test_coarse_size(self):
        assert coarse_size(7) == 3
        assert coarse_size(63) == 31

    def test_coarse_size_invalid(self):
        with pytest.raises(ValueError):
            coarse_size(1)
        with pytest.raises(ValueError):
            coarse_size(8)


class TestTransfers:
    def test_restriction_shape_2d(self):
        coarse, ops = restrict_full_weighting(np.ones((7, 7)))
        assert coarse.shape == (3, 3)
        assert ops > 0

    def test_restriction_shape_3d(self):
        coarse, _ = restrict_full_weighting(np.ones((7, 7, 7)))
        assert coarse.shape == (3, 3, 3)

    def test_restriction_preserves_constants_in_interior(self):
        coarse, _ = restrict_full_weighting(np.ones((15, 15)))
        # Away from the (zero) boundary, full weighting of 1 is 1.
        assert np.allclose(coarse[1:-1, 1:-1], 1.0)

    def test_restriction_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            restrict_full_weighting(np.ones((8, 8)))

    def test_prolongation_shape(self):
        fine, ops = prolong(np.ones((3, 3)))
        assert fine.shape == (7, 7)
        assert ops > 0

    def test_prolongation_interpolates_linearly(self):
        coarse = np.array([[1.0]])
        fine, _ = prolong(coarse)
        # Coarse node sits at fine (1, 1); its edge neighbours average
        # with the zero boundary.
        assert fine[1, 1] == 1.0
        assert fine[0, 1] == 0.5
        assert fine[1, 0] == 0.5
        assert fine[0, 0] == 0.25

    def test_variational_transpose_relation_2d(self):
        """Full weighting is prolongation^T / 4 in 2-D (/8 in 3-D)."""
        rng = np.random.default_rng(0)
        fine = rng.normal(size=(7, 7))
        coarse = rng.normal(size=(3, 3))
        restricted, _ = restrict_full_weighting(fine)
        prolonged, _ = prolong(coarse)
        lhs = float((restricted * coarse).sum())
        rhs = float((fine * prolonged).sum()) / 4.0
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_variational_transpose_relation_3d(self):
        rng = np.random.default_rng(1)
        fine = rng.normal(size=(7, 7, 7))
        coarse = rng.normal(size=(3, 3, 3))
        restricted, _ = restrict_full_weighting(fine)
        prolonged, _ = prolong(coarse)
        lhs = float((restricted * coarse).sum())
        rhs = float((fine * prolonged).sum()) / 8.0
        assert lhs == pytest.approx(rhs, rel=1e-12)


class TestSORPoisson:
    def problem(self, n=15, seed=0):
        h = 1.0 / (n + 1)
        rng = np.random.default_rng(seed)
        exact = rng.normal(size=(n, n))
        f = apply_laplacian_2d(exact, h)
        return exact, f, h

    def test_reduces_error(self):
        exact, f, h = self.problem()
        u0 = np.zeros_like(exact)
        u1, ops = sor_poisson_2d(u0, f, h, omega=1.5, iterations=50)
        err0 = np.linalg.norm(exact - u0)
        err1 = np.linalg.norm(exact - u1)
        assert err1 < 0.2 * err0
        assert ops == 50 * 6 * 15 * 15

    def test_exact_solution_is_fixed_point(self):
        exact, f, h = self.problem()
        u, _ = sor_poisson_2d(exact, f, h, omega=1.3, iterations=5)
        assert np.allclose(u, exact, atol=1e-10)

    def test_more_iterations_more_accurate(self):
        exact, f, h = self.problem()
        zero = np.zeros_like(exact)
        u_few, _ = sor_poisson_2d(zero, f, h, 1.5, 10)
        u_many, _ = sor_poisson_2d(zero, f, h, 1.5, 200)
        assert np.linalg.norm(exact - u_many) < \
            np.linalg.norm(exact - u_few)


class TestHelmholtz3D:
    def test_operator_matches_banded_matrix(self):
        n = 3
        rng = np.random.default_rng(0)
        a = rng.uniform(0.5, 1.0, size=(n, n, n))
        b = rng.uniform(0.5, 1.0, size=(n, n, n))
        h = 0.25
        band = helmholtz_banded(a, b, h)
        size = n ** 3
        dense = np.zeros((size, size))
        for offset in range(band.shape[0]):
            for j in range(size - offset):
                dense[j + offset, j] = band[offset, j]
                dense[j, j + offset] = band[offset, j]
        phi = rng.normal(size=(n, n, n))
        applied, _ = apply_helmholtz_3d(phi, a, b, h)
        assert np.allclose(dense @ phi.reshape(-1), applied.reshape(-1))

    def test_manufactured_problem_consistency(self):
        rng = np.random.default_rng(1)
        problem = manufactured_helmholtz_problem(7, rng)
        applied, _ = apply_helmholtz_3d(problem["phi_exact"],
                                        problem["a"], problem["b"],
                                        problem["h"])
        assert np.allclose(applied, problem["f"])

    def test_direct_solve_recovers_exact(self):
        rng = np.random.default_rng(2)
        problem = manufactured_helmholtz_problem(3, rng)
        band = helmholtz_banded(problem["a"], problem["b"], problem["h"])
        factor, _ = banded_cholesky_factor(band)
        x, _ = banded_cholesky_solve(factor, problem["f"].reshape(-1))
        assert np.allclose(x.reshape(3, 3, 3), problem["phi_exact"],
                           atol=1e-8)

    def test_sor_converges(self):
        rng = np.random.default_rng(3)
        problem = manufactured_helmholtz_problem(7, rng)
        faces = face_coefficients(problem["b"])
        zero = np.zeros_like(problem["f"])
        phi, ops = sor_helmholtz_3d(zero, problem["f"], problem["a"],
                                    faces, problem["h"], omega=1.4,
                                    iterations=300)
        err0 = np.linalg.norm(problem["phi_exact"])
        err = np.linalg.norm(phi - problem["phi_exact"])
        assert err < 1e-3 * err0
        assert ops > 0

    def test_face_coefficients_shapes(self):
        b = np.random.default_rng(4).uniform(0.5, 1.0, size=(5, 5, 5))
        faces = face_coefficients(b)
        assert len(faces) == 6
        for face in faces:
            assert face.shape == (5, 5, 5)
            assert np.all(face > 0)

    def test_restrict_coefficients(self):
        field = np.random.default_rng(5).uniform(0.5, 1.0, size=(7, 7, 7))
        coarse, ops = restrict_coefficients(field)
        assert coarse.shape == (3, 3, 3)
        # Averaged coefficients stay inside the original range near the
        # interior (boundary weighting can dip below).
        assert coarse.min() > 0.0
        assert ops > 0


class TestCycleShapes:
    def synthetic_trace(self) -> ExecutionTrace:
        trace = ExecutionTrace()
        trace.record("mg", 0, action="relax", n=15, count=2)
        trace.record("mg", 0, action="descend", n=7)
        trace.record("mg", 1, action="relax", n=7, count=1)
        trace.record("mg", 1, action="descend", n=3)
        trace.record("mg", 2, action="direct", n=3)
        trace.record("mg", 1, action="ascend", n=7)
        trace.record("mg", 0, action="ascend", n=15)
        trace.record("mg", 0, action="relax", n=15, count=2)
        return trace

    def test_extract_levels(self):
        shape = extract_cycle_shape(self.synthetic_trace(), 15)
        assert shape.depth == 2
        counts = shape.counts()
        assert counts["relax"] == 3
        assert counts["direct"] == 1
        assert counts["descend"] == 2

    def test_render_contains_symbols(self):
        shape = extract_cycle_shape(self.synthetic_trace(), 15)
        art = render_cycle(shape)
        assert "D" in art
        assert "o" in art
        assert "\\" in art and "/" in art
        assert "n=  15" in art

    def test_empty_trace(self):
        shape = extract_cycle_shape(ExecutionTrace(), 15)
        assert render_cycle(shape) == "(empty cycle)"

    def test_long_trace_compressed(self):
        trace = ExecutionTrace()
        for _ in range(500):
            trace.record("mg", 0, action="relax", n=15)
        shape = extract_cycle_shape(trace, 15)
        art = render_cycle(shape, max_width=40)
        assert max(len(line) for line in art.splitlines()) <= 60
