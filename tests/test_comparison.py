"""Tests for the adaptive comparison heuristic (Section 5.5.1)."""

import numpy as np
import pytest

from repro.autotuner.candidate import Candidate
from repro.autotuner.comparison import Comparator, ComparisonSettings
from repro.autotuner.testing import ProgramTestHarness
from repro.compiler.compile import compile_program
from repro.config.decision_tree import SizeDecisionTree

from tests.conftest import approxmean_inputs, make_approxmean_transform


def make_harness(noise: float = 0.0, seed: int = 0) -> ProgramTestHarness:
    program, _ = compile_program(make_approxmean_transform())
    return ProgramTestHarness(program, approxmean_inputs, base_seed=seed,
                              noise=noise)


def candidate_with_m(harness, m: float) -> Candidate:
    config = harness.program.default_config().with_entry(
        "approxmean@main.m", SizeDecisionTree([float(m)]))
    return Candidate(config)


class TestComparisonSettings:
    def test_validation(self):
        with pytest.raises(ValueError):
            ComparisonSettings(min_trials=0)
        with pytest.raises(ValueError):
            ComparisonSettings(min_trials=5, max_trials=3)


class TestDeterministicComparisons:
    def test_clear_cost_difference_decided_at_min_trials(self):
        harness = make_harness()
        comparator = Comparator(harness, ComparisonSettings(
            min_trials=3, max_trials=25))
        cheap = candidate_with_m(harness, 2)
        expensive = candidate_with_m(harness, 5000)
        assert comparator.compare(cheap, expensive, 64, "objective") == 1
        assert comparator.compare(expensive, cheap, 64, "objective") == -1
        # Deterministic costs: decided without extra trials.
        assert cheap.results.count(64) == 3
        assert expensive.results.count(64) == 3

    def test_identical_candidates_same(self):
        harness = make_harness()
        comparator = Comparator(harness, ComparisonSettings(
            min_trials=3, max_trials=25))
        a = candidate_with_m(harness, 10)
        b = candidate_with_m(harness, 10)
        assert comparator.compare(a, b, 64, "objective") == 0
        assert a.results.count(64) == 3

    def test_accuracy_comparison_direction(self):
        harness = make_harness()
        comparator = Comparator(harness, ComparisonSettings(
            min_trials=3, max_trials=25))
        rough = candidate_with_m(harness, 1)
        fine = candidate_with_m(harness, 5000)
        assert comparator.compare(fine, rough, 256, "accuracy") == 1

    def test_unknown_kind_rejected(self):
        harness = make_harness()
        comparator = Comparator(harness)
        a = candidate_with_m(harness, 4)
        with pytest.raises(ValueError):
            comparator.compare(a, a, 4, "nope")


class TestFailureDominance:
    def test_failed_candidate_loses(self):
        harness = make_harness()
        comparator = Comparator(harness, ComparisonSettings(
            min_trials=2, max_trials=4))
        good = candidate_with_m(harness, 4)
        bad = candidate_with_m(harness, 4)
        harness.ensure_trials(good, 16, 2)
        from repro.autotuner.results import Trial
        bad.results.add(16, Trial(0.0, 0.0, failed=True))
        bad.results.add(16, Trial(0.0, 0.0, failed=True))
        assert comparator.compare(good, bad, 16, "objective") == 1
        assert comparator.compare(bad, good, 16, "objective") == -1

    def test_both_failed_same(self):
        harness = make_harness()
        comparator = Comparator(harness, ComparisonSettings(
            min_trials=1, max_trials=2))
        from repro.autotuner.results import Trial
        a = candidate_with_m(harness, 4)
        b = candidate_with_m(harness, 4)
        for candidate in (a, b):
            candidate.results.add(16, Trial(0.0, 0.0, failed=True))
        assert comparator.compare(a, b, 16, "objective") == 0


class TestAdaptiveTrialCounts:
    def test_noise_increases_trials(self):
        """The paper's mouse-wiggle anecdote: more variance, more trials."""
        settings = ComparisonSettings(min_trials=3, max_trials=25)

        def trials_used(noise: float) -> int:
            harness = make_harness(noise=noise, seed=42)
            comparator = Comparator(harness, settings)
            # Two candidates with a small true cost difference.
            a = candidate_with_m(harness, 100)
            b = candidate_with_m(harness, 103)
            comparator.compare(a, b, 512, "objective")
            return a.results.count(512) + b.results.count(512)

        quiet = trials_used(0.0)
        noisy = trials_used(0.5)
        assert quiet == 6          # decided at min trials
        assert noisy > quiet       # variance forces extra testing

    def test_trials_never_exceed_max(self):
        harness = make_harness(noise=2.0, seed=1)
        settings = ComparisonSettings(min_trials=3, max_trials=8)
        comparator = Comparator(harness, settings)
        a = candidate_with_m(harness, 100)
        b = candidate_with_m(harness, 101)
        comparator.compare(a, b, 512, "objective")
        assert a.results.count(512) <= 8
        assert b.results.count(512) <= 8

    def test_indistinguishable_noisy_candidates_judged_same(self):
        harness = make_harness(noise=1.0, seed=3)
        settings = ComparisonSettings(min_trials=3, max_trials=6)
        comparator = Comparator(harness, settings)
        a = candidate_with_m(harness, 100)
        b = candidate_with_m(harness, 100)
        assert comparator.compare(a, b, 512, "objective") == 0
