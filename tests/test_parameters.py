"""Tests for parameter kinds and the parameter space."""

import numpy as np
import pytest

from repro.config.decision_tree import SizeDecisionTree
from repro.config.parameters import (
    ChoiceSiteParam,
    ParameterSpace,
    ScalarParam,
    SizeValueParam,
    SwitchParam,
)
from repro.errors import ConfigError


class TestChoiceSiteParam:
    def test_default_entry_is_single_leaf_tree(self):
        param = ChoiceSiteParam("site", num_choices=3, default=1)
        tree = param.default_entry()
        assert isinstance(tree, SizeDecisionTree)
        assert tree.lookup(1) == 1

    def test_needs_at_least_one_choice(self):
        with pytest.raises(ConfigError):
            ChoiceSiteParam("site", num_choices=0)

    def test_default_in_range(self):
        with pytest.raises(ConfigError):
            ChoiceSiteParam("site", num_choices=2, default=5)

    def test_label_lookup(self):
        param = ChoiceSiteParam("s", 2, choice_labels=("a", "b"))
        assert param.label(1) == "b"

    def test_label_count_checked(self):
        with pytest.raises(ConfigError):
            ChoiceSiteParam("s", 3, choice_labels=("a",))

    def test_clamp(self):
        param = ChoiceSiteParam("s", 3)
        assert param.clamp(-1) == 0
        assert param.clamp(9) == 2


class TestSizeValueParam:
    def test_coerce_clamps_and_rounds(self):
        param = SizeValueParam("v", lo=1, hi=10, default=2)
        assert param.coerce(0.2) == 1
        assert param.coerce(99) == 10
        assert param.coerce(3.6) == 4

    def test_float_param_not_rounded(self):
        param = SizeValueParam("v", lo=0.0, hi=1.0, default=0.5,
                               integer=False)
        assert param.coerce(0.33) == pytest.approx(0.33)

    def test_domain_validated(self):
        with pytest.raises(ConfigError):
            SizeValueParam("v", lo=5, hi=1, default=2)
        with pytest.raises(ConfigError):
            SizeValueParam("v", lo=1, hi=5, default=9)

    def test_unknown_scaling_rejected(self):
        with pytest.raises(ConfigError):
            SizeValueParam("v", lo=1, hi=5, default=2, scaling="magic")


class TestScalarParam:
    def test_default_entry(self):
        assert ScalarParam("c", 1, 9, 4).default_entry() == 4

    def test_coerce(self):
        param = ScalarParam("c", 1.0, 2.0, 1.5, integer=False)
        assert param.coerce(5.0) == 2.0


class TestSwitchParam:
    def test_default_entry_first_choice(self):
        assert SwitchParam("s", ("x", "y")).default_entry() == "x"

    def test_explicit_default(self):
        assert SwitchParam("s", ("x", "y"), default="y").default_entry() \
            == "y"

    def test_default_must_be_choice(self):
        with pytest.raises(ConfigError):
            SwitchParam("s", ("x",), default="z")

    def test_needs_choices(self):
        with pytest.raises(ConfigError):
            SwitchParam("s", ())


class TestParameterSpace:
    def space(self) -> ParameterSpace:
        return ParameterSpace([
            ChoiceSiteParam("choice", 3),
            SizeValueParam("accvar", 1, 100, 5,
                           is_accuracy_variable=True,
                           accuracy_direction=+1),
            ScalarParam("cut", 1, 64, 8),
            SwitchParam("mode", ("a", "b")),
        ])

    def test_duplicate_rejected(self):
        space = self.space()
        with pytest.raises(ConfigError):
            space.add(SwitchParam("mode", ("a",)))

    def test_lookup_unknown(self):
        with pytest.raises(ConfigError):
            self.space()["nope"]

    def test_kind_queries(self):
        space = self.space()
        assert len(space.choice_sites()) == 1
        assert len(space.size_values()) == 1
        assert len(space.accuracy_variables()) == 1
        assert len(space.scalars()) == 1
        assert len(space.switches()) == 1
        assert len(space) == 4

    def test_default_config_valid(self):
        space = self.space()
        space.validate(space.default_config())

    def test_random_config_valid(self):
        space = self.space()
        rng = np.random.default_rng(0)
        for _ in range(20):
            space.validate(space.random_config(rng))

    def test_validate_rejects_out_of_domain_choice(self):
        space = self.space()
        config = space.default_config().with_entry(
            "choice", SizeDecisionTree([7]))
        with pytest.raises(ConfigError):
            space.validate(config)

    def test_validate_rejects_out_of_domain_value(self):
        space = self.space()
        config = space.default_config().with_entry(
            "accvar", SizeDecisionTree([5000.0]))
        with pytest.raises(ConfigError):
            space.validate(config)

    def test_validate_rejects_scalar_out_of_range(self):
        space = self.space()
        config = space.default_config().with_entry("cut", 1000.0)
        with pytest.raises(ConfigError):
            space.validate(config)

    def test_validate_rejects_unknown_switch_value(self):
        space = self.space()
        config = space.default_config().with_entry("mode", "zzz")
        with pytest.raises(ConfigError):
            space.validate(config)

    def test_validate_rejects_scalar_where_tree_expected(self):
        space = self.space()
        config = space.default_config().with_entry("choice", 1)
        with pytest.raises(ConfigError):
            space.validate(config)

    def test_merged_with(self):
        space = self.space()
        other = ParameterSpace([SwitchParam("extra", ("q",)),
                                SwitchParam("mode", ("a", "b"))])
        merged = space.merged_with(other)
        assert "extra" in merged
        assert len(merged) == 5
