"""Tests for the configuration-file representation."""

import pytest

from repro.config.configuration import Configuration
from repro.config.decision_tree import SizeDecisionTree
from repro.errors import ConfigError


def sample_config() -> Configuration:
    return Configuration({
        "tree": SizeDecisionTree([1, 2], cutoffs=[16]),
        "scalar": 3.5,
        "switch": "fast",
    })


class TestAccess:
    def test_getitem(self):
        assert sample_config()["scalar"] == 3.5

    def test_missing_entry(self):
        with pytest.raises(ConfigError):
            sample_config()["nope"]

    def test_get_default(self):
        assert sample_config().get("nope", 9) == 9

    def test_contains_iter_len(self):
        config = sample_config()
        assert "tree" in config
        assert sorted(config) == ["scalar", "switch", "tree"]
        assert len(config) == 3

    def test_tree_accessor(self):
        assert sample_config().tree("tree").lookup(20) == 2

    def test_tree_accessor_rejects_scalar(self):
        with pytest.raises(ConfigError):
            sample_config().tree("scalar")

    def test_lookup_resolves_trees_and_scalars(self):
        config = sample_config()
        assert config.lookup("tree", 5) == 1
        assert config.lookup("tree", 16) == 2
        assert config.lookup("scalar", 16) == 3.5


class TestUpdates:
    def test_with_entry(self):
        config = sample_config()
        updated = config.with_entry("scalar", 9.0)
        assert updated["scalar"] == 9.0
        assert config["scalar"] == 3.5  # original untouched

    def test_with_entry_unknown_key(self):
        with pytest.raises(ConfigError):
            sample_config().with_entry("new", 1)

    def test_with_entries(self):
        updated = sample_config().with_entries(
            {"scalar": 1.0, "switch": "slow"})
        assert updated["scalar"] == 1.0
        assert updated["switch"] == "slow"


class TestSerialisation:
    def test_json_round_trip(self):
        config = sample_config()
        assert Configuration.from_json(config.to_json()) == config

    def test_dumps_loads(self):
        config = sample_config()
        assert Configuration.loads(config.dumps()) == config

    def test_save_load(self, tmp_path):
        config = sample_config()
        path = tmp_path / "config.json"
        config.save(path)
        assert Configuration.load(path) == config

    def test_hashable(self):
        assert hash(sample_config()) == hash(sample_config())

    def test_describe_resolved(self):
        text = sample_config().describe(n=20)
        assert "tree = 2" in text

    def test_describe_unresolved(self):
        assert "SizeDecisionTree" in sample_config().describe()
