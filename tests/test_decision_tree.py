"""Tests for input-size decision trees."""

import pytest

from repro.config.decision_tree import SizeDecisionTree
from repro.errors import ConfigError


class TestConstruction:
    def test_single_leaf(self):
        tree = SizeDecisionTree([7])
        assert tree.lookup(0) == 7
        assert tree.lookup(1e9) == 7
        assert tree.num_levels == 0

    def test_leaf_cutoff_mismatch(self):
        with pytest.raises(ConfigError):
            SizeDecisionTree([1, 2], cutoffs=[10, 20])

    def test_empty_leaves_rejected(self):
        with pytest.raises(ConfigError):
            SizeDecisionTree([])

    def test_unsorted_cutoffs_rejected(self):
        with pytest.raises(ConfigError):
            SizeDecisionTree([1, 2, 3], cutoffs=[20, 10])

    def test_duplicate_cutoffs_rejected(self):
        with pytest.raises(ConfigError):
            SizeDecisionTree([1, 2, 3], cutoffs=[10, 10])

    def test_nonpositive_cutoff_rejected(self):
        with pytest.raises(ConfigError):
            SizeDecisionTree([1, 2], cutoffs=[0])


class TestLookup:
    def test_interval_semantics(self):
        tree = SizeDecisionTree(["small", "mid", "large"], cutoffs=[10, 100])
        assert tree.lookup(5) == "small"
        assert tree.lookup(10) == "mid"      # cutoff belongs to upper leaf
        assert tree.lookup(99) == "mid"
        assert tree.lookup(100) == "large"

    def test_leaf_index(self):
        tree = SizeDecisionTree([0, 1, 2], cutoffs=[10, 100])
        assert tree.leaf_index(3) == 0
        assert tree.leaf_index(10) == 1
        assert tree.leaf_index(1000) == 2

    def test_intervals_cover_everything(self):
        tree = SizeDecisionTree([0, 1], cutoffs=[8])
        spans = list(tree.intervals())
        assert spans[0][:2] == (0.0, 8.0)
        assert spans[1][0] == 8.0
        assert spans[1][1] == float("inf")


class TestMutations:
    def test_add_level_preserves_behaviour_by_default(self):
        tree = SizeDecisionTree([3])
        split = tree.add_level(12.0)
        for n in (1, 11, 12, 500):
            assert split.lookup(n) == 3

    def test_add_level_then_change_upper(self):
        tree = SizeDecisionTree([3]).add_level(12.0).set_leaf_for_size(20, 9)
        assert tree.lookup(5) == 3
        assert tree.lookup(20) == 9

    def test_add_duplicate_cutoff_rejected(self):
        tree = SizeDecisionTree([3]).add_level(12.0)
        with pytest.raises(ConfigError):
            tree.add_level(12.0)

    def test_add_level_with_explicit_value(self):
        tree = SizeDecisionTree([3]).add_level(10.0, upper_value=5)
        assert tree.lookup(9) == 3
        assert tree.lookup(10) == 5

    def test_remove_level_merges_downward(self):
        tree = SizeDecisionTree([1, 2, 3], cutoffs=[10, 100])
        merged = tree.remove_level(0)
        assert merged.lookup(5) == 1
        assert merged.lookup(50) == 1
        assert merged.lookup(500) == 3

    def test_remove_level_out_of_range(self):
        with pytest.raises(ConfigError):
            SizeDecisionTree([1]).remove_level(0)

    def test_set_leaf(self):
        tree = SizeDecisionTree([1, 2], cutoffs=[10]).set_leaf(1, 7)
        assert tree.lookup(20) == 7
        assert tree.lookup(5) == 1

    def test_set_leaf_out_of_range(self):
        with pytest.raises(ConfigError):
            SizeDecisionTree([1]).set_leaf(3, 0)

    def test_scale_cutoff(self):
        tree = SizeDecisionTree([1, 2], cutoffs=[10]).scale_cutoff(0, 2.0)
        assert tree.cutoffs == (20.0,)

    def test_scale_cutoff_clamps_between_neighbours(self):
        tree = SizeDecisionTree([1, 2, 3], cutoffs=[10, 20])
        scaled = tree.scale_cutoff(0, 100.0)
        assert 10 < scaled.cutoffs[0] < 20

    def test_scale_cutoff_invalid_factor(self):
        with pytest.raises(ConfigError):
            SizeDecisionTree([1, 2], cutoffs=[10]).scale_cutoff(0, -1.0)

    def test_mutations_do_not_modify_original(self):
        tree = SizeDecisionTree([1], cutoffs=[])
        tree.add_level(5.0)
        assert tree.num_levels == 0


class TestMutationEdgeCases:
    """Boundary behaviour of the Section-5.4 mutation operations."""

    def test_remove_level_on_single_leaf_tree(self):
        """A leaf-only tree has no cutoff to remove at any index."""
        tree = SizeDecisionTree([42])
        assert tree.num_levels == 0
        for index in (-1, 0, 1):
            with pytest.raises(ConfigError, match="no cutoff"):
                tree.remove_level(index)

    def test_remove_last_level_yields_single_leaf(self):
        tree = SizeDecisionTree([1, 2], cutoffs=[10]).remove_level(0)
        assert tree.num_levels == 0
        assert tree.leaves == (1,)  # lower leaf wins the merge
        with pytest.raises(ConfigError):
            tree.remove_level(0)  # and it is now leaf-only

    def test_add_level_at_existing_cutoff_rejected(self):
        tree = SizeDecisionTree([1, 2], cutoffs=[10])
        with pytest.raises(ConfigError, match="already present"):
            tree.add_level(10.0)
        # The int/float spelling of the same cutoff is the same cutoff.
        with pytest.raises(ConfigError, match="already present"):
            tree.add_level(10)

    def test_add_level_nonpositive_cutoff_rejected(self):
        for bad in (0.0, -5.0):
            with pytest.raises(ConfigError, match="positive"):
                SizeDecisionTree([1]).add_level(bad)

    def test_scale_cutoff_without_room_rejected(self):
        """Neighbours so close that no strictly-between clamp exists."""
        lo = 1.0
        hi = lo * (1 + 1e-9)          # adjacent beyond clamp resolution
        mid = lo + (hi - lo) / 2       # strictly between, barely
        tree = SizeDecisionTree([1, 2, 3, 4], cutoffs=[lo, mid, hi])
        with pytest.raises(ConfigError, match="no room"):
            tree.scale_cutoff(1, 1e6)
        with pytest.raises(ConfigError, match="no room"):
            tree.scale_cutoff(1, 1e-6)

    def test_scale_cutoff_clamp_preserves_strict_ordering(self):
        """When room exists, extreme factors clamp strictly inside."""
        tree = SizeDecisionTree([1, 2, 3], cutoffs=[10, 20])
        for index, factor in ((0, 1e9), (0, 1e-9), (1, 1e9), (1, 1e-9)):
            scaled = tree.scale_cutoff(index, factor)
            c = scaled.cutoffs
            assert c[0] < c[1]
            assert all(x > 0 for x in c)

    def test_scale_single_cutoff_has_infinite_room(self):
        tree = SizeDecisionTree([1, 2], cutoffs=[10])
        assert tree.scale_cutoff(0, 1e6).cutoffs == (1e7,)
        assert tree.scale_cutoff(0, 1e-6).cutoffs[0] == \
            pytest.approx(1e-5)


class TestSerialisation:
    def test_json_round_trip(self):
        tree = SizeDecisionTree([1, "x", 3.5], cutoffs=[4, 9])
        assert SizeDecisionTree.from_json(tree.to_json()) == tree

    def test_equality_and_hash(self):
        a = SizeDecisionTree([1, 2], cutoffs=[10])
        b = SizeDecisionTree([1, 2], cutoffs=[10])
        assert a == b
        assert hash(a) == hash(b)
        assert a != SizeDecisionTree([1, 3], cutoffs=[10])

    def test_repr_mentions_intervals(self):
        assert "inf" in repr(SizeDecisionTree([1]))
