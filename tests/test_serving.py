"""The serving subsystem: artifacts, the store, and the engine.

Three contracts are enforced here:

* **Artifact round-trips** — for *every* suite program, serialize →
  deserialize → attach produces identical configurations and identical
  dynamic-bin-lookup decisions for any requested accuracy; schema or
  program mismatches are rejected loudly.
* **Serve/run equivalence** — a large batch of mixed-accuracy
  ``ServeRequest``s through the engine (on thread and process
  backends) returns bin choices and outputs identical to serial
  single-call ``TunedProgram.run``, with guarantees, escalation
  counts, and latency populated.
* **Observability** — fallbacks and escalations are counted, never
  silent.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.autotuner import Autotuner, ProgramTestHarness, TunerSettings
from repro.compiler.compile import compile_program
from repro.errors import AccuracyError, ArtifactError
from repro.runtime.backends import (
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
)
from repro.runtime.executor import TunedProgram
from repro.runtime.policy import (
    BinDecision,
    escalation_ladder,
    most_accurate_bin,
    select_bin,
)
from repro.serving import (
    SCHEMA_VERSION,
    ArtifactStore,
    ServeRequest,
    ServingEngine,
    TunedArtifact,
)
from repro.suite import all_benchmarks

from tests.test_backends import (
    make_pickmean_transform,
    pickmean_inputs,
    quick_settings,
)

SUITE_NAMES = sorted(all_benchmarks())


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tuned_pickmean():
    """(program, TuningResult) for the picklable mean transform."""
    program, _ = compile_program(make_pickmean_transform())
    harness = ProgramTestHarness(program, pickmean_inputs, base_seed=3)
    result = Autotuner(program, harness, quick_settings()).tune()
    return program, result


@pytest.fixture(scope="module")
def pickmean_artifact(tuned_pickmean):
    _, result = tuned_pickmean
    return result.to_artifact(created_at="2026-07-29T00:00:00Z")


def suite_tuned_program(name: str) -> TunedProgram:
    """A TunedProgram for a suite benchmark without tuning: per-bin
    configurations sampled deterministically from the program's space
    (distinct per bin, so round-trip tests can tell bins apart)."""
    from repro.suite import get_benchmark
    program, _ = get_benchmark(name).compile()
    configs = {}
    for index, target in enumerate(
            program.root_transform.accuracy_bins):
        rng = np.random.default_rng(100 + index)
        configs[target] = program.random_config(rng)
    return TunedProgram(program, configs)


# ----------------------------------------------------------------------
# Bin-selection policy (pure functions)
# ----------------------------------------------------------------------
class TestPolicy:
    from repro.lang.metrics import AccuracyMetric
    higher = AccuracyMetric(lambda o, i: 0.0, higher_is_better=True)
    lower = AccuracyMetric(lambda o, i: 0.0, higher_is_better=False)

    def test_cheapest_satisfying_bin(self):
        decision = select_bin((0.5, 0.9, 0.99), self.higher, 0.7)
        assert decision == BinDecision(target=0.9, fallback=False,
                                       requested=0.7)

    def test_fallback_is_explicit(self):
        decision = select_bin((0.5, 0.9, 0.99), self.higher, 0.999)
        assert decision.target == 0.99
        assert decision.fallback

    def test_lower_is_better_direction(self):
        # Bin Packing style: bins sorted least -> most accurate means
        # descending targets for a lower-is-better metric.
        decision = select_bin((1.5, 1.1, 1.01), self.lower, 1.2)
        assert decision.target == 1.1  # cheapest bin with target <= 1.2
        assert not decision.fallback
        assert select_bin((1.5, 1.1, 1.01), self.lower, 1.001).fallback

    def test_escalation_ladder_is_suffix(self):
        assert escalation_ladder((0.5, 0.9, 0.99), self.higher, 0.9) == \
            (0.9, 0.99)
        assert escalation_ladder((1.5, 1.1, 1.01), self.lower, 1.1) == \
            (1.1, 1.01)

    def test_most_accurate_requires_bins(self):
        assert most_accurate_bin((0.5, 0.9)) == 0.9
        with pytest.raises(ValueError):
            most_accurate_bin(())


# ----------------------------------------------------------------------
# Artifact round-trips across the whole suite
# ----------------------------------------------------------------------
class TestArtifactRoundTrip:
    @pytest.mark.parametrize("name", SUITE_NAMES)
    def test_round_trip_preserves_configs_and_choices(self, name):
        tuned = suite_tuned_program(name)
        artifact = TunedArtifact.from_tuned(tuned)
        assert artifact.provenance == ("benchmark", name)
        # serialize -> JSON text -> deserialize -> attach
        clone = TunedArtifact.from_json(
            json.loads(json.dumps(artifact.to_json())))
        reloaded = clone.to_tuned(tuned.program)
        assert reloaded.bins == tuned.bins
        assert reloaded.bin_configs == tuned.bin_configs
        # Dynamic bin lookup decides identically for any request:
        # probe every bin target, midpoints, and beyond-best requests.
        targets = list(tuned.bins)
        probes = targets + \
            [(a + b) / 2 for a, b in zip(targets, targets[1:])] + \
            [targets[-1] * 1.5, targets[0] * 0.5]
        for requested in probes:
            assert reloaded.select(requested) == tuned.select(requested)

    @pytest.mark.parametrize("name", SUITE_NAMES)
    def test_provenance_resolves_fresh_program(self, name):
        tuned = suite_tuned_program(name)
        artifact = TunedArtifact.from_tuned(tuned)
        resolved = artifact.resolve()  # rebuilds program by provenance
        assert resolved.program.root == tuned.program.root
        assert resolved.bin_configs == tuned.bin_configs

    def test_schema_version_mismatch_rejected(self, pickmean_artifact):
        payload = pickmean_artifact.to_json()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ArtifactError, match="schema version"):
            TunedArtifact.from_json(payload)

    def test_wrong_kind_rejected(self, pickmean_artifact):
        payload = pickmean_artifact.to_json()
        payload["kind"] = "something-else"
        with pytest.raises(ArtifactError, match="not a tuned artifact"):
            TunedArtifact.from_json(payload)

    def test_malformed_payload_rejected(self):
        with pytest.raises(ArtifactError):
            TunedArtifact.from_json({"schema_version": SCHEMA_VERSION,
                                     "kind": "repro.tuned-artifact"})

    def test_program_mismatch_rejected(self, pickmean_artifact):
        other = suite_tuned_program("poisson")
        with pytest.raises(ArtifactError, match="tuned for"):
            pickmean_artifact.to_tuned(other.program)

    def test_guarantees_travel_with_the_artifact(self, tuned_pickmean,
                                                 pickmean_artifact):
        program, result = tuned_pickmean
        reloaded = pickmean_artifact.to_tuned(program)
        expected = result.bin_guarantees()
        assert set(reloaded.guarantees) == set(expected)
        for target, guarantee in expected.items():
            assert reloaded.guarantee_for(target) == guarantee

    def test_metadata_records_tuning_provenance(self, pickmean_artifact,
                                                tuned_pickmean):
        _, result = tuned_pickmean
        metadata = pickmean_artifact.metadata
        assert metadata["seed"] == result.settings.seed
        assert metadata["settings_digest"] == result.settings.digest()
        assert metadata["created_at"] == "2026-07-29T00:00:00Z"
        assert metadata["trials_run"] == result.trials_run


# ----------------------------------------------------------------------
# The artifact store
# ----------------------------------------------------------------------
class TestArtifactStore:
    def test_save_load_list(self, tmp_path, pickmean_artifact):
        store = ArtifactStore(tmp_path / "artifacts")
        store.save(pickmean_artifact)
        store.save(pickmean_artifact, tag="nightly")
        assert store.list() == {"pickmean": ["default", "nightly"]}
        loaded = store.load("pickmean")
        assert loaded.bin_targets == pickmean_artifact.bin_targets
        assert loaded.metadata == dict(pickmean_artifact.metadata)

    def test_missing_artifact_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ArtifactError, match="no artifact"):
            store.load("pickmean")

    def test_moved_file_rejected(self, tmp_path, pickmean_artifact):
        """A file smuggled into another program's directory must not
        be served under that program's name."""
        store = ArtifactStore(tmp_path)
        path = store.save(pickmean_artifact)
        other = store.path_for("poisson")
        import os
        import shutil
        os.makedirs(os.path.dirname(other), exist_ok=True)
        shutil.copy(path, other)
        with pytest.raises(ArtifactError, match="mismatched"):
            store.load("poisson")

    def test_path_traversal_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for bad in ("../escape", "a/b", "", ".hidden"):
            with pytest.raises(ArtifactError):
                store.path_for(bad)

    def test_load_tuned_by_provenance(self, tmp_path):
        tuned = suite_tuned_program("poisson")
        store = ArtifactStore(tmp_path)
        store.save(TunedArtifact.from_tuned(tuned))
        fresh = store.load_tuned("poisson")  # no compiled program given
        assert fresh.bin_configs == tuned.bin_configs


# ----------------------------------------------------------------------
# Artifact versioning: monotonic versions, latest pointer, rollback
# ----------------------------------------------------------------------
class TestStoreVersioning:
    def stamped(self, pickmean_artifact, n):
        """The same artifact, distinguishable by metadata."""
        from dataclasses import replace
        return replace(pickmean_artifact,
                       metadata={**pickmean_artifact.metadata,
                                 "revision": n})

    def test_saves_are_monotonic_versions(self, tmp_path,
                                          pickmean_artifact):
        store = ArtifactStore(tmp_path)
        assert store.versions("pickmean") == []
        assert store.latest_version("pickmean") is None
        store.save(self.stamped(pickmean_artifact, 1))
        store.save(self.stamped(pickmean_artifact, 2))
        assert store.versions("pickmean") == [1, 2]
        assert store.latest_version("pickmean") == 2
        assert store.load("pickmean").metadata["revision"] == 2
        assert store.load_version("pickmean", "default",
                                  1).metadata["revision"] == 1

    def test_candidate_save_does_not_move_latest(self, tmp_path,
                                                 pickmean_artifact):
        store = ArtifactStore(tmp_path)
        store.save(self.stamped(pickmean_artifact, 1))
        store.save(self.stamped(pickmean_artifact, 2),
                   set_latest=False)
        assert store.versions("pickmean") == [1, 2]
        assert store.latest_version("pickmean") == 1
        assert store.load("pickmean").metadata["revision"] == 1
        store.promote("pickmean", "default", 2)
        assert store.latest_version("pickmean") == 2
        assert store.load("pickmean").metadata["revision"] == 2

    def test_rollback_repoints_without_deleting(self, tmp_path,
                                                pickmean_artifact):
        store = ArtifactStore(tmp_path)
        for n in (1, 2, 3):
            store.save(self.stamped(pickmean_artifact, n))
        assert store.rollback("pickmean") == 2
        assert store.load("pickmean").metadata["revision"] == 2
        assert store.versions("pickmean") == [1, 2, 3]  # history kept
        assert store.rollback("pickmean", to_version=1) == 1
        assert store.load("pickmean").metadata["revision"] == 1

    def test_rollback_without_history_rejected(self, tmp_path,
                                               pickmean_artifact):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ArtifactError, match="nothing to roll back"):
            store.rollback("pickmean")
        store.save(pickmean_artifact)
        with pytest.raises(ArtifactError, match="no version older"):
            store.rollback("pickmean")

    def test_missing_version_rejected(self, tmp_path, pickmean_artifact):
        store = ArtifactStore(tmp_path)
        store.save(pickmean_artifact)
        with pytest.raises(ArtifactError, match="no version 9"):
            store.load_version("pickmean", "default", 9)

    def test_retention_prunes_oldest_but_keeps_latest(
            self, tmp_path, pickmean_artifact):
        store = ArtifactStore(tmp_path, retain=2)
        for n in (1, 2, 3, 4):
            store.save(self.stamped(pickmean_artifact, n))
        assert store.versions("pickmean") == [3, 4]
        # The latest-pointed version survives retention even when
        # newer candidates pile up past the bound.
        store.rollback("pickmean")  # latest -> 3
        store.save(self.stamped(pickmean_artifact, 5),
                   set_latest=False)
        store.save(self.stamped(pickmean_artifact, 6),
                   set_latest=False)
        assert 3 in store.versions("pickmean")
        assert store.load("pickmean").metadata["revision"] == 3

    def test_retention_validated(self, tmp_path):
        with pytest.raises(ArtifactError):
            ArtifactStore(tmp_path, retain=0)

    def test_legacy_unversioned_layout_still_loads(
            self, tmp_path, pickmean_artifact):
        """A pre-versioning store (bare <tag>.json) keeps working."""
        store = ArtifactStore(tmp_path)
        import os
        path = store.path_for("pickmean")
        os.makedirs(os.path.dirname(path))
        pickmean_artifact.save(path)
        assert store.load("pickmean").bin_targets == \
            pickmean_artifact.bin_targets
        assert store.versions("pickmean") == []
        assert store.list() == {"pickmean": ["default"]}
        # The first versioned save starts history at v1.
        store.save(pickmean_artifact)
        assert store.versions("pickmean") == [1]

    def test_enumeration_and_stats(self, tmp_path, pickmean_artifact):
        store = ArtifactStore(tmp_path)
        assert store.list_programs() == []
        assert store.list_tags("pickmean") == []
        store.save(pickmean_artifact)
        store.save(pickmean_artifact, tag="nightly")
        store.save(TunedArtifact.from_tuned(
            suite_tuned_program("poisson")))
        assert store.list_programs() == ["pickmean", "poisson"]
        assert store.list_tags("pickmean") == ["default", "nightly"]
        # A candidate-only tag (never materialised) is still listed.
        store.save(pickmean_artifact, tag="candidate",
                   set_latest=False)
        assert "candidate" in store.list_tags("pickmean")
        stats = store.stats()
        assert stats.programs == 2
        assert stats.tags == 4
        assert stats.versions == 4
        assert stats.total_bytes > 0
        assert "2 programs" in str(stats)


# ----------------------------------------------------------------------
# Serving equivalence: the acceptance criterion
# ----------------------------------------------------------------------
def mixed_requests(count: int) -> list[ServeRequest]:
    """``count`` mixed-accuracy requests over varying inputs/seeds,
    including exact bins, midpoints, beyond-best (fallback), and
    verify-escalation traffic."""
    accuracies = [0.5, 0.9, 0.99, 0.7, None, 1.5, 0.95, 0.2]
    requests = []
    for i in range(count):
        rng = np.random.default_rng(1000 + i)
        requests.append(ServeRequest(
            program="pickmean",
            inputs=pickmean_inputs(48 + (i % 7), rng),
            n=48 + (i % 7),
            accuracy=accuracies[i % len(accuracies)],
            verify=(i % 3 == 0),
            seed=i % 5))
    return requests


class TestServingEquivalence:
    @pytest.fixture(scope="class")
    def served_setup(self, tuned_pickmean, tmp_path_factory):
        """Artifact saved, then loaded into a *fresh* TunedProgram —
        the tune-once/serve-many path."""
        program, result = tuned_pickmean
        store = ArtifactStore(tmp_path_factory.mktemp("artifacts"))
        store.save(result.to_artifact())
        fresh_program, _ = compile_program(make_pickmean_transform())
        tuned = store.load_tuned("pickmean", compiled=fresh_program)
        reference = result.tuned_program()
        return tuned, reference

    @pytest.mark.parametrize("backend_factory", [
        pytest.param(lambda: ThreadPoolBackend(max_workers=4),
                     id="thread"),
        pytest.param(lambda: ProcessPoolBackend(max_workers=2,
                                                chunk_size=8),
                     id="process"),
    ])
    def test_batch_matches_serial_single_calls(self, served_setup,
                                               backend_factory):
        tuned, reference = served_setup
        requests = mixed_requests(104)
        with ServingEngine(backend=backend_factory(),
                           batch_size=32) as engine:
            engine.register("pickmean", tuned)
            responses = engine.serve(requests)
            stats = engine.stats()

        assert len(responses) == len(requests)
        checked_ok = checked_failed = 0
        for request, response in zip(requests, responses):
            kwargs = dict(accuracy=request.accuracy,
                          verify=request.verify, seed=request.seed)
            if response.ok:
                expected = reference.run(request.inputs, request.n,
                                         **kwargs)
                assert response.outputs["est"] == \
                    expected.outputs["est"]
                assert response.bin_target == expected.bin_target
                assert response.fallback == expected.fallback
                assert response.escalations == expected.escalations
                if request.accuracy is not None:
                    assert response.requested_accuracy == \
                        request.accuracy
                assert response.achieved_accuracy is not None
                assert response.latency >= 0.0
                checked_ok += 1
            else:
                # The single-call path fails identically.
                with pytest.raises(AccuracyError):
                    reference.run(request.inputs, request.n, **kwargs)
                assert response.achieved_accuracy is not None
                checked_failed += 1
        assert checked_ok >= 90  # the batch is overwhelmingly servable

        # Guarantees ride on responses for bins that have them.
        guaranteed = [r for r in responses
                      if r.ok and r.guarantee is not None]
        assert guaranteed, "no response carried a guarantee"
        for response in guaranteed:
            assert response.guarantee.target == response.bin_target

        # Stats snapshot is fully populated.
        assert stats.requests == len(requests)
        assert stats.served == checked_ok
        assert stats.errors == checked_failed
        assert stats.fallbacks > 0  # the 1.5-accuracy requests
        assert stats.executions >= stats.requests - stats.errors
        assert stats.p95_latency >= stats.p50_latency >= 0.0

    def test_thread_and_process_identical(self, served_setup):
        tuned, _ = served_setup
        requests = mixed_requests(24)
        outputs = {}
        for name, factory in (
                ("serial", lambda: SerialBackend()),
                ("thread", lambda: ThreadPoolBackend(max_workers=4))):
            with ServingEngine(backend=factory()) as engine:
                engine.register("pickmean", tuned)
                responses = engine.serve(requests)
            outputs[name] = [
                (r.ok, r.bin_target, r.escalations,
                 r.outputs["est"] if r.ok else None)
                for r in responses]
        assert outputs["thread"] == outputs["serial"]


# ----------------------------------------------------------------------
# Engine behaviour
# ----------------------------------------------------------------------
class TestServingEngine:
    def test_unknown_program_is_an_error_response(self):
        engine = ServingEngine()
        response = engine.serve_one(ServeRequest(
            program="nonesuch", inputs={}, n=4.0))
        assert not response.ok
        assert "nonesuch" in response.error
        assert engine.stats().errors == 1

    def test_store_backed_lazy_load(self, tmp_path):
        tuned = suite_tuned_program("poisson")
        store = ArtifactStore(tmp_path)
        store.save(TunedArtifact.from_tuned(tuned))
        engine = ServingEngine(store=store)
        assert engine.programs == ()
        rng = np.random.default_rng(5)
        from repro.suite import get_benchmark
        inputs = get_benchmark("poisson").generate(7, rng)
        response = engine.serve_one(ServeRequest(
            program="poisson", inputs=inputs, n=7.0))
        assert response.ok
        assert engine.programs == ("poisson",)

    def test_fallback_counted_not_silent(self, tuned_pickmean):
        program, result = tuned_pickmean
        engine = ServingEngine()
        engine.register("pickmean", result.tuned_program())
        rng = np.random.default_rng(9)
        response = engine.serve_one(ServeRequest(
            program="pickmean", inputs=pickmean_inputs(32, rng), n=32.0,
            accuracy=5.0))  # beyond every bin
        assert response.ok
        assert response.fallback
        assert response.bin_target == most_accurate_bin(
            result.tuned_program().bins)
        assert engine.stats().fallbacks == 1

    def test_escalations_are_batched_and_counted(self, tuned_pickmean):
        """Verify traffic that must climb the ladder reports its
        escalation count and the engine aggregates them."""
        program, result = tuned_pickmean
        tuned = result.tuned_program()
        engine = ServingEngine()
        engine.register("pickmean", tuned)
        rng = np.random.default_rng(11)
        # Request the least accurate bin exactly, but demand (via
        # verify) an accuracy only higher bins reach; unless bin one
        # already meets it, the engine must escalate.
        requests = [ServeRequest(
            program="pickmean", inputs=pickmean_inputs(64, rng), n=64.0,
            accuracy=0.5, verify=True, seed=s) for s in range(8)]
        responses = engine.serve(requests)
        stats = engine.stats()
        assert stats.requests == 8
        assert stats.escalations == sum(r.escalations for r in responses)
        assert stats.executions == \
            sum(r.escalations + 1 for r in responses)

    def test_crashed_execution_is_terminal_not_escalated(self):
        """A program that raises is a broken deployment: the response
        names the exception and the engine does not silently climb the
        ladder (the single-call path propagates the same exception)."""
        from repro.lang.transform import Transform
        transform = Transform(
            "fragile", inputs=("x",), outputs=("y",),
            accuracy_metric=lambda o, i: 1.0,
            accuracy_bins=(0.5, 0.9))
        transform.rule(outputs=("y",), inputs=("x",), name="boom")(
            lambda ctx, x: 1.0 / 0.0)
        program, _ = compile_program(transform)
        tuned = TunedProgram(program, {
            0.5: program.default_config(),
            0.9: program.default_config()})
        engine = ServingEngine()
        engine.register("fragile", tuned)
        response = engine.serve_one(ServeRequest(
            program="fragile", inputs={"x": 1.0}, n=4.0,
            accuracy=0.5, verify=True))
        assert not response.ok
        assert "ZeroDivisionError" in response.error
        assert response.bin_target == 0.5
        assert response.escalations == 0  # crash did not escalate
        assert engine.stats().errors == 1
        with pytest.raises(ZeroDivisionError):
            tuned.run({"x": 1.0}, 4.0, accuracy=0.5, verify=True)

    def test_batch_size_validated(self):
        with pytest.raises(ValueError):
            ServingEngine(batch_size=0)

    def test_concurrent_serve_calls(self, tuned_pickmean):
        """serve() may be driven from several threads: counters stay
        consistent and every response is well-formed."""
        import threading
        _, result = tuned_pickmean
        engine = ServingEngine(batch_size=4)
        engine.register("pickmean", result.tuned_program())
        per_thread = 10
        collected: list[list] = [[], []]

        def worker(slot):
            rng = np.random.default_rng(slot)
            requests = [ServeRequest(
                program="pickmean", inputs=pickmean_inputs(32, rng),
                n=32.0, accuracy=0.9, seed=i) for i in range(per_thread)]
            collected[slot] = engine.serve(requests)

        threads = [threading.Thread(target=worker, args=(slot,))
                   for slot in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(len(responses) == per_thread
                   for responses in collected)
        assert all(r.ok for responses in collected for r in responses)
        stats = engine.stats()
        assert stats.requests == 2 * per_thread
        assert stats.served == 2 * per_thread

    def test_reset_stats(self, tuned_pickmean):
        _, result = tuned_pickmean
        engine = ServingEngine()
        engine.register("pickmean", result.tuned_program())
        rng = np.random.default_rng(3)
        engine.serve_one(ServeRequest(
            program="pickmean", inputs=pickmean_inputs(16, rng), n=16.0))
        assert engine.stats().requests == 1
        engine.reset_stats()
        assert engine.stats().requests == 0


# ----------------------------------------------------------------------
# Hot swap & shadow deployments
# ----------------------------------------------------------------------
def degraded_pickmean(program) -> TunedProgram:
    """Every bin served by the (inaccurate) default configuration."""
    return TunedProgram(program, {
        target: program.default_config()
        for target in program.root_transform.accuracy_bins})


class TestHotSwapAndShadow:
    def test_hot_swap_is_atomic_and_counted(self, tuned_pickmean):
        program, result = tuned_pickmean
        tuned = result.tuned_program()
        engine = ServingEngine()
        engine.register("pickmean", tuned)
        replacement = degraded_pickmean(program)
        previous = engine.hot_swap("pickmean", replacement)
        assert previous is tuned
        assert engine.program_for("pickmean") is replacement
        assert engine.stats().swaps == 1
        # Served traffic now follows the new program's configs.
        rng = np.random.default_rng(4)
        inputs = pickmean_inputs(32, rng)
        response = engine.serve_one(ServeRequest(
            program="pickmean", inputs=inputs, n=32.0, seed=5))
        expected = replacement.run(inputs, 32.0, seed=5)
        assert response.outputs["est"] == expected.outputs["est"]

    def test_swap_invalidates_config_digests(self, tuned_pickmean):
        """Same name, different configs: responses must re-digest."""
        program, result = tuned_pickmean
        engine = ServingEngine()
        engine.register("pickmean", result.tuned_program())
        rng = np.random.default_rng(4)
        inputs = pickmean_inputs(32, rng)
        request = ServeRequest(program="pickmean", inputs=inputs,
                               n=32.0, seed=5)
        first = engine.serve_one(request)
        replacement = degraded_pickmean(program)
        engine.hot_swap("pickmean", replacement)
        second = engine.serve_one(request)
        assert second.outputs["est"] == \
            replacement.run(inputs, 32.0, seed=5).outputs["est"]
        assert first.outputs["est"] != second.outputs["est"]

    def test_shadow_samples_fraction_without_changing_responses(
            self, tuned_pickmean):
        program, result = tuned_pickmean
        tuned = result.tuned_program()
        engine = ServingEngine()
        engine.register("pickmean", tuned)
        requests = [ServeRequest(
            program="pickmean",
            inputs=pickmean_inputs(32, np.random.default_rng(50 + i)),
            n=32.0, accuracy=0.9, seed=i) for i in range(12)]
        plain = engine.serve(requests)

        engine.start_shadow("pickmean", degraded_pickmean(program),
                            fraction=0.25)
        shadowed = engine.serve(requests)
        # Callers always get the primary's outputs.
        assert [r.outputs["est"] for r in shadowed] == \
            [r.outputs["est"] for r in plain]
        status = engine.shadow_status("pickmean")
        assert status.samples == 3  # every 4th of 12 ok requests
        assert status.executions == 3
        assert len(status.primary_accuracies) == \
            len(status.candidate_accuracies) == 3
        assert engine.stats().shadow_executions == 3

        final = engine.stop_shadow("pickmean")
        assert final.samples == 3
        assert engine.shadow_status("pickmean") is None

    def test_shadow_buckets_pairs_by_primary_bin(self, tuned_pickmean):
        """Mixed-accuracy traffic lands in per-bin windows, so a
        drifted bin is judged on its own requests."""
        program, result = tuned_pickmean
        tuned = result.tuned_program()
        engine = ServingEngine()
        engine.register("pickmean", tuned)
        accuracies = [0.5, 0.99]
        requests = [ServeRequest(
            program="pickmean",
            inputs=pickmean_inputs(32, np.random.default_rng(70 + i)),
            n=32.0, accuracy=accuracies[i % 2], seed=i)
            for i in range(10)]
        engine.start_shadow("pickmean", degraded_pickmean(program),
                            fraction=1.0)
        responses = engine.serve(requests)
        status = engine.shadow_status("pickmean")
        served_bins = {r.bin_target for r in responses}
        assert set(status.per_bin) == served_bins
        for primary, candidate in status.per_bin.values():
            assert len(primary) == len(candidate) > 0
        assert sum(len(p) for p, _ in status.per_bin.values()) == \
            status.samples

    def test_shadow_fraction_validated(self, tuned_pickmean):
        program, result = tuned_pickmean
        engine = ServingEngine()
        engine.register("pickmean", result.tuned_program())
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                engine.start_shadow("pickmean",
                                    degraded_pickmean(program),
                                    fraction=bad)

    def test_hot_swap_ends_shadow_and_resets_telemetry(
            self, tuned_pickmean):
        from repro.serving import ServingTelemetry
        program, result = tuned_pickmean
        telemetry = ServingTelemetry()
        engine = ServingEngine(telemetry=telemetry)
        tuned = result.tuned_program()
        engine.register("pickmean", tuned)
        engine.serve_one(ServeRequest(
            program="pickmean",
            inputs=pickmean_inputs(16, np.random.default_rng(1)),
            n=16.0))
        assert telemetry.snapshots("pickmean")
        engine.start_shadow("pickmean", degraded_pickmean(program),
                            fraction=1.0)
        engine.hot_swap("pickmean", degraded_pickmean(program))
        assert engine.shadow_status("pickmean") is None
        assert telemetry.snapshots("pickmean") == []

    def test_telemetry_records_served_bins(self, tuned_pickmean):
        from repro.serving import ServingTelemetry
        _, result = tuned_pickmean
        telemetry = ServingTelemetry()
        engine = ServingEngine(telemetry=telemetry)
        engine.register("pickmean", result.tuned_program())
        responses = engine.serve([ServeRequest(
            program="pickmean",
            inputs=pickmean_inputs(32, np.random.default_rng(60 + i)),
            n=32.0, accuracy=0.9, seed=i) for i in range(6)])
        bin_target = responses[0].bin_target
        snap = telemetry.snapshot("pickmean", bin_target)
        assert snap.served == 6
        assert snap.samples == 6
        assert snap.mean_accuracy == pytest.approx(
            sum(r.achieved_accuracy for r in responses) / 6)
