"""Tests for seeded RNG derivation."""

import numpy as np

from repro.rng import derive_seed, generator_for, spawn


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_depends_on_base_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_depends_on_labels(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_depends_on_label_order(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_no_label_concatenation_ambiguity(self):
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")

    def test_64_bit_range(self):
        seed = derive_seed(123456789, "x")
        assert 0 <= seed < 2 ** 64

    def test_numeric_labels(self):
        assert derive_seed(0, 1.5, 2) == derive_seed(0, 1.5, 2)
        assert derive_seed(0, 1.5) != derive_seed(0, 2.5)


class TestGeneratorFor:
    def test_same_seed_same_stream(self):
        a = generator_for(7, "x").normal(size=5)
        b = generator_for(7, "x").normal(size=5)
        assert np.allclose(a, b)

    def test_different_labels_different_streams(self):
        a = generator_for(7, "x").normal(size=5)
        b = generator_for(7, "y").normal(size=5)
        assert not np.allclose(a, b)


class TestSpawn:
    def test_spawn_advances_parent(self):
        parent = np.random.default_rng(0)
        child1 = spawn(parent)
        child2 = spawn(parent)
        assert not np.allclose(child1.normal(size=4), child2.normal(size=4))

    def test_spawn_deterministic(self):
        a = spawn(np.random.default_rng(5)).normal(size=4)
        b = spawn(np.random.default_rng(5)).normal(size=4)
        assert np.allclose(a, b)
