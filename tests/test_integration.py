"""End-to-end integration: compile -> tune -> deploy -> verify.

These tests exercise the full pipeline the paper describes (Figure 4
plus Section 5) on two benchmarks small enough for CI: bin packing
(flat, 13-way algorithmic choice, lower-is-better metric) and Poisson
(recursive, auto sub-accuracy selection).
"""

import numpy as np
import pytest

from repro.autotuner import Autotuner, ProgramTestHarness, TunerSettings
from repro.errors import AccuracyError
from repro.runtime.executor import TunedProgram
from repro.runtime.guarantees import statistical_guarantee
from repro.suite import get_benchmark


@pytest.fixture(scope="module")
def tuned_binpacking():
    spec = get_benchmark("binpacking")
    program, info = spec.compile()
    harness = ProgramTestHarness(program, spec.generate, base_seed=11)
    settings = TunerSettings(input_sizes=(16.0, 64.0, 256.0),
                             rounds_per_size=2, mutation_attempts=10,
                             min_trials=2, max_trials=5, seed=13,
                             initial_random=2,
                             accuracy_confidence=None)
    result = Autotuner(program, harness, settings).tune()
    return spec, program, result


@pytest.fixture(scope="module")
def tuned_poisson():
    spec = get_benchmark("poisson")
    program, info = spec.compile()
    harness = ProgramTestHarness(program, spec.generate, base_seed=5,
                                 cost_limit=spec.cost_limit)
    settings = TunerSettings(input_sizes=(3.0, 7.0, 15.0),
                             rounds_per_size=2, mutation_attempts=6,
                             min_trials=1, max_trials=3, seed=11,
                             initial_random=1,
                             accuracy_confidence=None)
    result = Autotuner(program, harness, settings).tune()
    return spec, program, result


class TestBinpackingPipeline:
    def test_loose_bins_met(self, tuned_binpacking):
        _, _, result = tuned_binpacking
        # The loosest bins are always attainable; 1.01 needs exact
        # optimality at n=256 and may legitimately stay unmet.
        for target in (1.5, 1.4, 1.3, 1.2):
            assert target in result.best_per_bin

    def test_loose_bins_cheaper_than_tight(self, tuned_binpacking):
        _, _, result = tuned_binpacking
        n = result.sizes[-1]
        frontier = {t: c.results.mean_objective(n)
                    for t, c in result.best_per_bin.items()}
        tightest = min(frontier)  # most accurate present bin
        assert frontier[1.5] <= frontier[tightest]

    def test_deploy_and_verify(self, tuned_binpacking):
        spec, program, result = tuned_binpacking
        tuned = result.tuned_program()
        inputs = spec.generate(256, np.random.default_rng(77))
        run = tuned.run(inputs, 256, accuracy=1.3, verify=True)
        assert run.metrics.accuracy <= 1.3
        assert run.outputs["num_bins"] >= inputs["optimal_bins"]

    def test_verify_failure_raises_accuracy_error(self, tuned_binpacking):
        spec, program, result = tuned_binpacking
        tuned = result.tuned_program()
        inputs = spec.generate(64, np.random.default_rng(78))
        # Requiring better-than-optimal packing must fail.
        with pytest.raises(AccuracyError):
            tuned.run(inputs, 64, accuracy=0.99, verify=True)

    def test_statistical_guarantee_from_training(self, tuned_binpacking):
        _, program, result = tuned_binpacking
        n = result.sizes[-1]
        metric = program.root_transform.accuracy_metric
        candidate = result.best_per_bin[1.3]
        guarantee = statistical_guarantee(
            candidate.results.accuracies(n), 1.3, metric,
            confidence=0.9)
        assert guarantee.holds

    def test_persistence_round_trip(self, tuned_binpacking, tmp_path):
        spec, program, result = tuned_binpacking
        tuned = result.tuned_program()
        path = tmp_path / "binpacking.json"
        tuned.save(path)
        loaded = TunedProgram.load(program, path)
        inputs = spec.generate(128, np.random.default_rng(5))
        a = tuned.run(inputs, 128, seed=3)
        b = loaded.run(inputs, 128, seed=3)
        assert a.outputs["num_bins"] == b.outputs["num_bins"]


class TestPoissonPipeline:
    def test_all_order_bins_met(self, tuned_poisson):
        _, _, result = tuned_poisson
        assert result.unmet_bins == ()

    def test_accuracy_orders_achieved(self, tuned_poisson):
        spec, program, result = tuned_poisson
        tuned = result.tuned_program()
        inputs = spec.generate(15, np.random.default_rng(123))
        for target in (1.0, 5.0):
            run = tuned.run(inputs, 15, bin_target=target, verify=True)
            assert run.metrics.accuracy >= target

    def test_loose_accuracy_cheaper(self, tuned_poisson):
        spec, program, result = tuned_poisson
        tuned = result.tuned_program()
        inputs = spec.generate(15, np.random.default_rng(9))
        cheap = tuned.run(inputs, 15, bin_target=1.0)
        precise = tuned.run(inputs, 15, bin_target=9.0)
        assert cheap.cost <= precise.cost

    def test_subaccuracy_selection_recorded_in_trace(self, tuned_poisson):
        spec, program, result = tuned_poisson
        tuned = result.tuned_program()
        inputs = spec.generate(15, np.random.default_rng(10))
        run = tuned.run(inputs, 15, bin_target=9.0, collect_trace=True)
        choices = run.trace.of_kind("choice")
        subcalls = run.trace.of_kind("subcall")
        assert choices, "algorithmic choices must be traced"
        if subcalls:  # multigrid config: recursion through bins
            assert all(event["target"] == "poisson"
                       for event in subcalls)
