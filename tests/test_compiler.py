"""Tests for the compiler: choice graph, analysis, program execution."""

import numpy as np
import pytest

from repro.compiler.analysis import gather_transforms
from repro.compiler.choice_graph import build_choice_graph, schedule_groups
from repro.compiler.compile import compile_program
from repro.compiler.training_info import TrainingInfo
from repro.config.decision_tree import SizeDecisionTree
from repro.errors import CompileError, ExecutionError
from repro.lang.transform import CallSite, Transform
from repro.lang.tunables import accuracy_variable
from repro.runtime.timing import CostLimitExceeded


def kmeans_like() -> Transform:
    transform = Transform("km", inputs=("points",), through=("centers",),
                          outputs=("labels",))
    transform.rule(outputs=("centers",), inputs=("points",),
                   name="init_a")(lambda ctx, p: p * 0)
    transform.rule(outputs=("centers",), inputs=("points",),
                   name="init_b")(lambda ctx, p: p * 0 + 1)
    transform.rule(outputs=("labels",), inputs=("points", "centers"),
                   name="solve")(lambda ctx, p, c: p + c)
    return transform


class TestChoiceGraph:
    def test_groups_and_sites(self):
        _, groups = build_choice_graph(kmeans_like())
        by_outputs = {g.outputs: g for g in groups}
        assert by_outputs[("centers",)].is_choice_site
        assert not by_outputs[("labels",)].is_choice_site
        assert by_outputs[("centers",)].site_name == "centers"

    def test_schedule_respects_dependencies(self):
        order = [g.outputs for g in schedule_groups(kmeans_like())]
        assert order.index(("centers",)) < order.index(("labels",))

    def test_self_dependency_allowed(self):
        transform = Transform("t", inputs=("a",), outputs=("b",))
        # Iterative rule reading its own output does not make a cycle.
        transform.rule(outputs=("b",), inputs=("a", "b"),
                       name="iterate")(lambda ctx, a, b: a)
        assert len(schedule_groups(transform)) == 1

    def test_cycle_detected(self):
        transform = Transform("t", inputs=("a",), outputs=("b", "c"))
        transform.rule(outputs=("b",), inputs=("c",),
                       name="r1")(lambda ctx, c: c)
        transform.rule(outputs=("c",), inputs=("b",),
                       name="r2")(lambda ctx, b: b)
        with pytest.raises(CompileError):
            schedule_groups(transform)


class TestGatherTransforms:
    def test_unknown_call_target(self):
        transform = Transform("t", inputs=("a",), outputs=("b",),
                              calls=[CallSite("c", "missing")])
        transform.rule(outputs=("b",))(lambda ctx: 0)
        with pytest.raises(CompileError):
            gather_transforms(transform, {})

    def test_transitive_gathering(self):
        leaf = Transform("leaf", inputs=("x",), outputs=("y",))
        leaf.rule(outputs=("y",), inputs=("x",))(lambda ctx, x: x)
        mid = Transform("mid", inputs=("x",), outputs=("y",),
                        calls=[CallSite("sub", "leaf")])
        mid.rule(outputs=("y",), inputs=("x",))(lambda ctx, x: x)
        root = Transform("root", inputs=("x",), outputs=("y",),
                         calls=[CallSite("sub", "mid")])
        root.rule(outputs=("y",), inputs=("x",))(lambda ctx, x: x)
        found = gather_transforms(root, {"mid": mid, "leaf": leaf})
        assert set(found) == {"root", "mid", "leaf"}


class TestCompiledProgram:
    def test_instances_per_bin(self, approxmean):
        program, info = approxmean
        assert set(program.instances) == {"approxmean@main"}

    def test_recursive_transform_gets_bin_instances(self):
        def metric(outputs, inputs):
            return 1.0

        transform = Transform(
            "rec", inputs=("x",), outputs=("y",),
            accuracy_metric=metric, accuracy_bins=(0.5, 0.9),
            calls=[CallSite("self", "rec")])

        @transform.rule(outputs=("y",), inputs=("x",))
        def rule(ctx, x):
            if ctx.n > 1:
                return ctx.call("self", {"x": x}, n=ctx.n // 2)["y"] + 1
            return 0

        program, info = compile_program(transform)
        assert set(program.instances) == {"rec@main", "rec@0.5", "rec@0.9"}
        # Sub-call bin selection parameters exist for every instance.
        for prefix in program.instances:
            assert f"{prefix}.call.self.bin" in program.space

        config = program.default_config()
        result = program.execute({"x": 0}, 8, config)
        assert result.outputs["y"] == 3  # 8 -> 4 -> 2 -> 1

    def test_execute_missing_input(self, approxmean_program):
        with pytest.raises(ExecutionError):
            approxmean_program.run_instance(
                "approxmean@main", {}, 4,
                approxmean_program.default_config(),
                np.random.default_rng(0),
                __import__("repro.runtime.timing",
                           fromlist=["CostAccumulator"]).CostAccumulator(),
                __import__("repro.runtime.trace",
                           fromlist=["ExecutionTrace"]).ExecutionTrace(),
                0)

    def test_unknown_instance(self, approxmean_program):
        with pytest.raises(CompileError):
            approxmean_program.instance("zzz@main")

    def test_cost_limit_enforced(self, approxmean_program):
        config = approxmean_program.default_config().with_entry(
            "approxmean@main.m", SizeDecisionTree([1000.0]))
        with pytest.raises(CostLimitExceeded):
            approxmean_program.execute(
                {"xs": np.ones(2000)}, 2000, config, cost_limit=10.0)

    def test_choice_resolution_by_size(self, approxmean_program):
        program = approxmean_program
        key = "approxmean@main.rule.est"
        tree = SizeDecisionTree([0, 1], cutoffs=[100])
        config = program.default_config().with_entry(key, tree)
        xs = np.ones(50)
        small = program.execute({"xs": xs}, 50, config)
        large = program.execute({"xs": np.ones(200)}, 200, config)
        assert small.cost == 4      # sample_mean with m=4
        assert large.cost == 400    # exact_mean costs 2n

    def test_multi_output_rule_arity_checked(self):
        transform = Transform("t", inputs=("a",), outputs=("b", "c"))
        transform.rule(outputs=("b", "c"),
                       inputs=("a",))(lambda ctx, a: a)  # not a tuple
        program, _ = compile_program(transform)
        with pytest.raises(ExecutionError):
            program.execute({"a": 1}, 1, program.default_config())

    def test_trace_collection_toggle(self, approxmean_program):
        program = approxmean_program
        config = program.default_config()
        xs = np.ones(8)
        traced = program.execute({"xs": xs}, 8, config, collect_trace=True)
        untraced = program.execute({"xs": xs}, 8, config)
        assert len(traced.trace) > 0
        assert len(untraced.trace) == 0

    def test_wall_time_measured(self, approxmean_program):
        result = approxmean_program.execute(
            {"xs": np.ones(8)}, 8, approxmean_program.default_config())
        assert result.wall_time > 0


class TestColumnGranularity:
    def build(self) -> Transform:
        transform = Transform(
            "cols", inputs=("src",), outputs=("out",),
            allocators={"out": lambda ctx, data:
                        np.zeros((2, data["src"].shape[1]))})

        @transform.rule(outputs=("out",), inputs=("src",),
                        granularity="column")
        def fill(ctx, j, out, src):
            out[:, j] = src[:, j] * 2

        return transform

    def test_column_execution(self):
        program, _ = compile_program(self.build())
        src = np.arange(6.0).reshape(2, 3)
        result = program.execute({"src": src}, 3,
                                 program.default_config())
        assert np.allclose(result.outputs["out"], src * 2)

    def test_order_switch_exists_and_backward_works(self):
        program, _ = compile_program(self.build())
        key = "cols@main.order.fill"
        assert key in program.space
        config = program.default_config().with_entry(key, "backward")
        src = np.arange(6.0).reshape(2, 3)
        result = program.execute({"src": src}, 3, config)
        assert np.allclose(result.outputs["out"], src * 2)

    def test_missing_allocator_rejected(self):
        transform = Transform("t", inputs=("src",), outputs=("out",))

        @transform.rule(outputs=("out",), inputs=("src",),
                        granularity="column")
        def fill(ctx, j, out, src):
            out[:, j] = 0

        program, _ = compile_program(transform)
        with pytest.raises(ExecutionError):
            program.execute({"src": np.zeros((2, 2))}, 2,
                            program.default_config())


class TestTrainingInfo:
    def test_xml_round_trip(self, approxmean):
        _, info = approxmean
        assert TrainingInfo.from_xml(info.to_xml()) == info

    def test_save_load(self, approxmean, tmp_path):
        _, info = approxmean
        path = tmp_path / "info.xml"
        info.save(path)
        assert TrainingInfo.load(path) == info

    def test_accuracy_variables_flagged(self, approxmean):
        _, info = approxmean
        keys = {t.key for t in info.accuracy_variables()}
        assert "approxmean@main.m" in keys
        assert "approxmean@main.reps" in keys

    def test_root_bins(self, approxmean):
        _, info = approxmean
        assert info.root_bins() == (0.5, 0.9, 0.99)

    def test_tunable_lookup(self, approxmean):
        _, info = approxmean
        assert info.tunable("approxmean@main.m").accuracy_direction == 1
        with pytest.raises(KeyError):
            info.tunable("zzz")
