"""Tests for the execution context (params, for_enough, sub-calls)."""

import numpy as np
import pytest

from repro.compiler.compile import compile_program
from repro.config.decision_tree import SizeDecisionTree
from repro.errors import ExecutionError, LanguageError
from repro.lang.transform import CallSite, Transform
from repro.lang.tunables import accuracy_variable, for_enough


def build_caller_callee(callee_bins=(0.5, 0.9)):
    def metric(outputs, inputs):
        return 1.0

    callee = Transform("callee", inputs=("x",), outputs=("y",),
                       accuracy_metric=metric, accuracy_bins=callee_bins)

    @callee.rule(outputs=("y",), inputs=("x",))
    def rule(ctx, x):
        # Expose which bin instance ran through the output value.
        return (x, ctx.accuracy_target)

    caller = Transform("caller", inputs=("x",), outputs=("z",),
                       calls=[CallSite("auto", "callee"),
                              CallSite("fixed", "callee", accuracy=0.9)])

    @caller.rule(outputs=("z",), inputs=("x",))
    def call_rule(ctx, x):
        return ctx.call("auto", {"x": x}, n=ctx.n)["y"]

    return caller, callee


class TestForEnough:
    def test_count_from_config(self):
        transform = Transform("t", inputs=("x",), outputs=("y",),
                              tunables=[for_enough("loops", 50, 3)])

        @transform.rule(outputs=("y",), inputs=("x",))
        def rule(ctx, x):
            return sum(1 for _ in ctx.for_enough("loops"))

        program, _ = compile_program(transform)
        result = program.execute({"x": 0}, 4, program.default_config())
        assert result.outputs["y"] == 3

    def test_early_break_allowed(self):
        transform = Transform("t", inputs=("x",), outputs=("y",),
                              tunables=[for_enough("loops", 50, 10)])

        @transform.rule(outputs=("y",), inputs=("x",))
        def rule(ctx, x):
            count = 0
            for _ in ctx.for_enough("loops"):
                count += 1
                if count == 2:
                    break
            return count

        program, _ = compile_program(transform)
        assert program.execute({"x": 0}, 4,
                               program.default_config()).outputs["y"] == 2

    def test_size_dependent_counts(self):
        transform = Transform("t", inputs=("x",), outputs=("y",),
                              tunables=[for_enough("loops", 50, 1)])

        @transform.rule(outputs=("y",), inputs=("x",))
        def rule(ctx, x):
            return sum(1 for _ in ctx.for_enough("loops"))

        program, _ = compile_program(transform)
        tree = SizeDecisionTree([2.0, 7.0], cutoffs=[100])
        config = program.default_config().with_entry("t@main.loops", tree)
        assert program.execute({"x": 0}, 10, config).outputs["y"] == 2
        assert program.execute({"x": 0}, 200, config).outputs["y"] == 7


class TestSubCalls:
    def test_auto_accuracy_uses_config_bin(self):
        caller, callee = build_caller_callee()
        program, _ = compile_program(caller, [callee])
        key = "caller@main.call.auto.bin"
        # Default: most accurate bin.
        result = program.execute({"x": 5}, 4, program.default_config())
        assert result.outputs["z"] == (5, 0.9)
        # Select bin 0 instead.
        config = program.default_config().with_entry(
            key, SizeDecisionTree([0]))
        result = program.execute({"x": 5}, 4, config)
        assert result.outputs["z"] == (5, 0.5)

    def test_explicit_accuracy_has_no_choice_parameter(self):
        caller, callee = build_caller_callee()
        program, _ = compile_program(caller, [callee])
        assert "caller@main.call.fixed.bin" not in program.space

    def test_undeclared_call_site_rejected(self):
        transform = Transform("t", inputs=("x",), outputs=("y",))

        @transform.rule(outputs=("y",), inputs=("x",))
        def rule(ctx, x):
            return ctx.call("nope", {"x": x}, n=1)

        program, _ = compile_program(transform)
        with pytest.raises(LanguageError):
            program.execute({"x": 0}, 1, program.default_config())

    def test_runaway_recursion_guarded(self):
        def metric(outputs, inputs):
            return 1.0

        transform = Transform("loop", inputs=("x",), outputs=("y",),
                              accuracy_metric=metric,
                              accuracy_bins=(0.5,),
                              calls=[CallSite("self", "loop")])

        @transform.rule(outputs=("y",), inputs=("x",))
        def rule(ctx, x):
            # Never reduces n: unbounded recursion.
            return ctx.call("self", {"x": x}, n=ctx.n)["y"]

        program, _ = compile_program(transform)
        with pytest.raises(ExecutionError):
            program.execute({"x": 0}, 4, program.default_config())

    def test_subcall_events_traced(self):
        caller, callee = build_caller_callee()
        program, _ = compile_program(caller, [callee])
        result = program.execute({"x": 1}, 4, program.default_config(),
                                 collect_trace=True)
        subcalls = result.trace.of_kind("subcall")
        assert len(subcalls) == 1
        assert subcalls[0]["target"] == "callee"
        assert subcalls[0]["bin"] == "0.9"

    def test_fixed_accuracy_callee_uses_main_instance(self):
        fixed = Transform("fixedt", inputs=("x",), outputs=("y",))
        fixed.rule(outputs=("y",), inputs=("x",))(lambda ctx, x: x + 1)
        caller = Transform("caller2", inputs=("x",), outputs=("z",),
                           calls=[CallSite("sub", "fixedt")])

        @caller.rule(outputs=("z",), inputs=("x",))
        def rule(ctx, x):
            return ctx.call("sub", {"x": x}, n=1)["y"]

        program, _ = compile_program(caller, [fixed])
        assert "fixedt@main" in program.instances
        assert program.execute({"x": 1}, 1,
                               program.default_config()).outputs["z"] == 2


class TestContextServices:
    def test_cost_accumulates_across_calls(self):
        caller, callee = build_caller_callee()

        # Add a cost inside the callee.
        def costly(ctx, x):
            ctx.add_cost(17)
            return (x, ctx.accuracy_target)

        callee.rules[0] = type(callee.rules[0])(
            name="rule", fn=costly, inputs=("x",), outputs=("y",))
        program, _ = compile_program(caller, [callee])
        result = program.execute({"x": 0}, 2, program.default_config())
        assert result.cost == 17

    def test_invalid_choice_index_from_config(self, approxmean_program):
        program = approxmean_program
        bad = program.default_config().with_entry(
            "approxmean@main.rule.est", SizeDecisionTree([9]))
        with pytest.raises(ExecutionError):
            program.execute({"xs": np.ones(4)}, 4, bad)

    def test_negative_for_enough_rejected(self):
        transform = Transform(
            "t", inputs=("x",), outputs=("y",),
            tunables=[accuracy_variable("loops", -5, 5, 1)])

        @transform.rule(outputs=("y",), inputs=("x",))
        def rule(ctx, x):
            return sum(1 for _ in ctx.for_enough("loops"))

        program, _ = compile_program(transform)
        config = program.default_config().with_entry(
            "t@main.loops", SizeDecisionTree([-3.0]))
        with pytest.raises(ExecutionError):
            program.execute({"x": 0}, 1, config)
