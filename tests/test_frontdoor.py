"""The sharded serving front door (repro.serving.frontdoor).

Four contracts are enforced here:

* **Equivalence** — a 104-request mixed-accuracy workload through the
  front door at low load is response-identical to the direct
  ``ServingEngine`` path (same bins, outputs, escalation and fallback
  accounting), shard count notwithstanding.
* **Explicit refusal** — deadline-expired and queue-rejected requests
  resolve to explicit error responses and are counted; nothing is
  silently dropped (``submitted == completed + rejected + expired``).
* **Accuracy shedding** — under a forced shed level, traffic is routed
  to cheaper bins in cost order, stamped ``degraded``, and never below
  a request's floor bin.
* **Empty-window stats** — a shard that has not completed a request
  yet reports zeros, not a crash.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ConfigError
from repro.lang.metrics import AccuracyMetric
from repro.runtime.backends import ShardPlan, backend_from_spec
from repro.runtime.policy import SheddingPolicy
from repro.serving import (
    FrontDoor,
    ServeRequest,
    ServeResponse,
    ServingEngine,
    ServingStats,
    ServingTelemetry,
    latency_summary,
)

from tests.test_backends import tune_pickmean
from tests.test_serving import mixed_requests

HIGHER = AccuracyMetric(lambda outputs, inputs: 0.0, "higher")


# ----------------------------------------------------------------------
# Doubles: a duck-typed shard engine with a controllable gate
# ----------------------------------------------------------------------
class FakeTuned:
    bins = (0.5, 0.9, 0.99)
    metric = HIGHER


class GateEngine:
    """Shard-engine double whose ``serve`` blocks on a gate.

    Lets tests hold a shard busy (to queue traffic behind it
    deterministically) and inspect exactly which requests — at which
    accuracies and batch sizes — reached execution.
    """

    def __init__(self, *, open_gate: bool = False):
        self.gate = threading.Event()
        self.started = threading.Event()
        self.batches: list[list[ServeRequest]] = []
        if open_gate:
            self.gate.set()

    def serve(self, requests):
        self.started.set()
        assert self.gate.wait(10.0), "test gate never released"
        self.batches.append(list(requests))
        return [ServeResponse(
            program=request.program, ok=True, outputs={"est": 1.0},
            bin_target=request.accuracy, requested_accuracy=request.accuracy,
            achieved_accuracy=1.0, guarantee=None)
            for request in requests]

    def program_for(self, name, tag=None):
        return FakeTuned()

    @property
    def programs(self):
        return ("fake",)

    def stats(self):
        return ServingStats(requests=0, served=0, errors=0,
                            escalations=0, fallbacks=0, executions=0,
                            p50_latency=0.0, p95_latency=0.0,
                            backend="fake")

    def close(self):
        pass


def fake_request(accuracy=0.99, floor=None):
    return ServeRequest(program="fake", inputs={}, n=8.0,
                        accuracy=accuracy, floor=floor)


# ----------------------------------------------------------------------
# Equivalence with the direct engine path
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tuned():
    _, result = tune_pickmean()
    return result.tuned_program()


class TestFrontDoorEquivalence:
    def test_104_requests_match_direct_engine(self, tuned):
        requests = mixed_requests(104)
        with ServingEngine() as engine:
            engine.register("pickmean", tuned)
            direct = engine.serve(requests)
        with FrontDoor.build("async:3x1", shard_backend="serial",
                             shedding=None) as door:
            door.register("pickmean", tuned)
            responses = door.serve(requests)
            stats = door.stats()

        assert len(responses) == len(requests)
        for mine, reference in zip(responses, direct):
            assert mine.ok == reference.ok
            assert mine.bin_target == reference.bin_target
            assert mine.fallback == reference.fallback
            assert mine.escalations == reference.escalations
            assert mine.achieved_accuracy == reference.achieved_accuracy
            if mine.ok:
                assert mine.outputs["est"] == reference.outputs["est"]
            assert mine.degraded == 0

        # Full accounting: every request completed, nothing refused.
        assert stats.shards == 3
        assert stats.submitted == 104
        assert stats.completed == 104
        assert stats.rejected == stats.expired == 0
        assert stats.shed_level == 0 and stats.degraded == 0
        # The tier's aggregate matches what its shards served.
        assert stats.served + stats.errors == 104

    def test_low_load_spreads_across_shards(self, tuned):
        with FrontDoor.build("async:2x1", shard_backend="serial",
                             shedding=None) as door:
            door.register("pickmean", tuned)
            door.serve(mixed_requests(16))
            per_shard = [s.requests for s in door.stats().shard_stats]
        assert all(count > 0 for count in per_shard)


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
class TestBuild:
    def test_spec_expands_to_shards(self):
        with FrontDoor.build("async:4x2", shard_backend="serial") as door:
            assert door.shards == 4
            assert len(door.shard_engines) == 4

    def test_plan_accepted_directly(self):
        with FrontDoor.build(ShardPlan(shards=2, workers=1),
                             shard_backend="serial") as door:
            assert door.shards == 2

    def test_non_async_spec_rejected(self):
        with pytest.raises(ConfigError, match="async"):
            FrontDoor.build("process:2")

    def test_plan_default_backend_is_process_pool(self):
        plan = backend_from_spec("async:2x3", allow_sharded=True)
        assert plan.shard_backend_spec == "process:3"

    def test_needs_at_least_one_shard(self):
        with pytest.raises(ConfigError, match="shard"):
            FrontDoor([])

    @pytest.mark.parametrize("kwargs, match", [
        (dict(queue_limit=0), "queue_limit"),
        (dict(max_batch=0), "max_batch"),
        (dict(batch_window=-0.1), "batch_window"),
        (dict(deadline=0.0), "deadline"),
    ])
    def test_bad_bounds_rejected(self, kwargs, match):
        with pytest.raises(ConfigError, match=match):
            FrontDoor([GateEngine()], **kwargs)


# ----------------------------------------------------------------------
# Deadlines, rejection, and accounting — nothing is silently dropped
# ----------------------------------------------------------------------
class TestRefusalAccounting:
    def test_deadline_expiry_is_explicit(self):
        engine = GateEngine()
        telemetry = ServingTelemetry()
        door = FrontDoor([engine], deadline=0.05, shedding=None,
                         telemetry=telemetry)
        try:
            # First request drains immediately and blocks the shard;
            # the second waits in queue past its deadline.
            first = door.submit(fake_request())
            assert engine.started.wait(5.0)
            second = door.submit(fake_request())
            time.sleep(0.15)
            engine.gate.set()

            assert first.result(5.0).ok
            refused = second.result(5.0)
            assert not refused.ok
            assert "deadline expired" in refused.error
            assert refused.outputs is None

            stats = door.stats()
            assert stats.submitted == 2
            assert stats.completed == 1
            assert stats.expired == 1
            assert stats.rejected == 0
            assert telemetry.shedding("fake").expired == 1
        finally:
            door.close()

    def test_full_queues_reject(self):
        engine = GateEngine()
        telemetry = ServingTelemetry()
        door = FrontDoor([engine], queue_limit=2, shedding=None,
                         telemetry=telemetry)
        try:
            in_flight = door.submit(fake_request())
            assert engine.started.wait(5.0)
            queued = [door.submit(fake_request()) for _ in range(2)]
            overflow = door.submit(fake_request())

            refused = overflow.result(5.0)  # resolves *before* release
            assert not refused.ok
            assert "queues full" in refused.error

            engine.gate.set()
            assert in_flight.result(5.0).ok
            assert all(f.result(5.0).ok for f in queued)

            stats = door.stats()
            assert stats.submitted == 4
            assert stats.completed == 3
            assert stats.rejected == 1
            assert stats.completed + stats.rejected + stats.expired \
                == stats.submitted
            assert telemetry.shedding("fake").rejected == 1
        finally:
            door.close()

    def test_queued_requests_coalesce_into_one_batch(self):
        engine = GateEngine()
        door = FrontDoor([engine], shedding=None)
        try:
            first = door.submit(fake_request())
            assert engine.started.wait(5.0)
            rest = [door.submit(fake_request()) for _ in range(5)]
            engine.gate.set()
            first.result(5.0)
            for future in rest:
                future.result(5.0)
            # One blocked head-of-line request, then the five queued
            # behind it drain as a single micro-batch.
            assert [len(b) for b in engine.batches] == [1, 5]
        finally:
            door.close()


# ----------------------------------------------------------------------
# Accuracy shedding through the admission controller
# ----------------------------------------------------------------------
def always_hot(max_level):
    """A policy whose high watermark is 0: every admission is overload,
    so the shed level climbs one step per request — deterministic
    without real queue pressure."""
    return SheddingPolicy(low_watermark=0.0, high_watermark=0.0,
                          max_level=max_level)


class TestShedding:
    def test_degrades_in_cost_order_and_stamps_responses(self):
        engine = GateEngine(open_gate=True)
        telemetry = ServingTelemetry()
        door = FrontDoor([engine], shedding=always_hot(2),
                         telemetry=telemetry)
        try:
            responses = [door.submit(fake_request(0.99)).result(5.0)
                         for _ in range(3)]
            # Level climbs 1 → 2 → 2 (capped): one bin cheaper, then
            # two, in least-accurate-first (= cheapest-first) order.
            executed = [batch[0].accuracy for batch in engine.batches]
            assert executed == [0.9, 0.5, 0.5]
            assert [r.degraded for r in responses] == [1, 2, 2]
            assert door.shed_level == 2

            snapshot = telemetry.shedding("fake")
            assert snapshot.degraded == 3
            assert snapshot.degrade_steps == 5
            stats = door.stats()
            assert stats.degraded == 3 and stats.degrade_steps == 5
        finally:
            door.close()

    def test_floor_bin_is_respected(self):
        engine = GateEngine(open_gate=True)
        door = FrontDoor([engine], shedding=always_hot(8))
        try:
            door.submit(fake_request(0.99)).result(5.0)  # level now 1
            floored = door.submit(
                fake_request(0.99, floor=0.9)).result(5.0)
            unfloored = door.submit(fake_request(0.99)).result(5.0)
            assert engine.batches[1][0].accuracy == 0.9  # not below floor
            assert floored.degraded == 1
            assert engine.batches[2][0].accuracy == 0.5
            assert unfloored.degraded == 2
        finally:
            door.close()

    def test_shedding_disabled_never_degrades(self):
        engine = GateEngine(open_gate=True)
        door = FrontDoor([engine], shedding=None)
        try:
            response = door.submit(fake_request(0.99)).result(5.0)
            assert response.degraded == 0
            assert engine.batches[0][0].accuracy == 0.99
        finally:
            door.close()


# ----------------------------------------------------------------------
# Stats on empty windows; lifecycle
# ----------------------------------------------------------------------
class TestStatsAndLifecycle:
    def test_empty_latency_summary_is_zero(self):
        assert latency_summary([]) == (0.0, 0.0, 0.0)

    def test_fresh_engine_stats_do_not_raise(self):
        # Regression: a shard reporting before its first completed
        # request must summarise to zeros, not crash on an empty
        # window.
        stats = ServingEngine().stats()
        assert (stats.p50_latency, stats.p95_latency,
                stats.p99_latency) == (0.0, 0.0, 0.0)

    def test_fresh_frontdoor_stats_do_not_raise(self):
        door = FrontDoor([GateEngine()], shedding=None)
        try:
            stats = door.stats()
            assert stats.submitted == 0
            assert (stats.p50_latency, stats.p95_latency,
                    stats.p99_latency) == (0.0, 0.0, 0.0)
            assert str(stats)  # renders without traffic too
        finally:
            door.close()

    def test_close_is_idempotent_and_final(self):
        engine = GateEngine(open_gate=True)
        door = FrontDoor([engine], shedding=None)
        assert door.submit(fake_request()).result(5.0).ok
        door.close()
        door.close()
        with pytest.raises(RuntimeError, match="closed"):
            door.submit(fake_request())
