"""Tests for trial results and candidates."""

import math

import pytest

from repro.autotuner.candidate import Candidate, MutationRecord
from repro.autotuner.results import CandidateResults, Trial
from repro.config.configuration import Configuration
from repro.lang.metrics import AccuracyMetric


def metric_fn(outputs, inputs):
    return 0.0


HIGHER = AccuracyMetric(metric_fn, higher_is_better=True)
LOWER = AccuracyMetric(metric_fn, higher_is_better=False)


class TestCandidateResults:
    def test_add_and_query(self):
        results = CandidateResults()
        results.add(4, Trial(10.0, 0.5))
        results.add(4, Trial(12.0, 0.7))
        results.add(8, Trial(100.0, 0.9))
        assert results.count(4) == 2
        assert results.sizes() == (4.0, 8.0)
        assert results.mean_objective(4) == pytest.approx(11.0)
        assert results.mean_accuracy(4) == pytest.approx(0.6)

    def test_failed_trials_poison_objective(self):
        results = CandidateResults()
        results.add(4, Trial(10.0, 0.5))
        results.add(4, Trial(0.0, 0.0, failed=True))
        assert results.any_failed(4)
        assert results.mean_objective(4) == float("inf")
        assert float("inf") in results.objectives(4)

    def test_objective_fit_skips_failures(self):
        results = CandidateResults()
        results.add(4, Trial(10.0, 0.5))
        results.add(4, Trial(0.0, 0.0, failed=True))
        assert results.objective_fit(4).count == 1

    def test_copy_from_below_threshold(self):
        parent = CandidateResults()
        parent.add(4, Trial(1.0, 0.1))
        parent.add(16, Trial(2.0, 0.2))
        child = CandidateResults()
        child.copy_from(parent, below_size=10)
        assert child.count(4) == 1
        assert child.count(16) == 0

    def test_copy_from_unbounded(self):
        parent = CandidateResults()
        parent.add(4, Trial(1.0, 0.1))
        parent.add(16, Trial(2.0, 0.2))
        child = CandidateResults()
        child.copy_from(parent)
        assert child.count(16) == 1

    def test_empty_queries(self):
        results = CandidateResults()
        assert results.mean_objective(4) == float("inf")
        assert math.isnan(results.mean_accuracy(4))
        assert results.trials(4) == []


class TestCandidate:
    def config(self) -> Configuration:
        return Configuration({"a": 1})

    def test_ids_increase(self):
        first = Candidate(self.config())
        second = Candidate(self.config())
        assert second.candidate_id > first.candidate_id

    def test_lineage(self):
        parent = Candidate(self.config())
        record = MutationRecord("mut", (("a", 1),))
        child = Candidate(self.config(), parent=parent, mutation=record)
        assert child.parent_id == parent.candidate_id
        assert child.lineage == ("mut",)

    def test_meets_accuracy_mean(self):
        candidate = Candidate(self.config())
        for accuracy in (0.8, 0.9, 1.0):
            candidate.results.add(4, Trial(1.0, accuracy))
        assert candidate.meets_accuracy(4, 0.9, HIGHER)
        assert not candidate.meets_accuracy(4, 0.95, HIGHER)

    def test_meets_accuracy_lower_is_better(self):
        candidate = Candidate(self.config())
        candidate.results.add(4, Trial(1.0, 1.05))
        assert candidate.meets_accuracy(4, 1.1, LOWER)
        assert not candidate.meets_accuracy(4, 1.01, LOWER)

    def test_meets_accuracy_with_confidence_is_stricter(self):
        candidate = Candidate(self.config())
        for accuracy in (0.85, 0.95, 1.05):  # mean ~0.95, high variance
            candidate.results.add(4, Trial(1.0, accuracy))
        assert candidate.meets_accuracy(4, 0.94, HIGHER, confidence=None)
        assert not candidate.meets_accuracy(4, 0.94, HIGHER,
                                            confidence=0.95)

    def test_failed_trials_never_meet(self):
        candidate = Candidate(self.config())
        candidate.results.add(4, Trial(1.0, 5.0))
        candidate.results.add(4, Trial(1.0, 0.0, failed=True))
        assert not candidate.meets_accuracy(4, 0.1, HIGHER)

    def test_no_trials_never_meets(self):
        assert not Candidate(self.config()).meets_accuracy(4, 0.0, HIGHER)
