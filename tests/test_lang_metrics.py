"""Tests for directional accuracy metrics."""

from repro.lang.metrics import AccuracyMetric


def fn(outputs, inputs):
    return outputs["v"]


class TestHigherIsBetter:
    metric = AccuracyMetric(fn, "m")

    def test_compute(self):
        assert self.metric.compute({"v": 0.7}, {}) == 0.7

    def test_meets(self):
        assert self.metric.meets(0.9, 0.5)
        assert self.metric.meets(0.5, 0.5)
        assert not self.metric.meets(0.4, 0.5)

    def test_better(self):
        assert self.metric.better(0.9, 0.5)
        assert not self.metric.better(0.5, 0.5)

    def test_improvement(self):
        assert self.metric.improvement(0.9, 0.5) == 0.4

    def test_sort_key_orders_better_larger(self):
        assert self.metric.sort_key(0.9) > self.metric.sort_key(0.1)

    def test_worst_value(self):
        assert self.metric.worst_value() == float("-inf")


class TestLowerIsBetter:
    metric = AccuracyMetric(fn, "m", higher_is_better=False)

    def test_meets(self):
        assert self.metric.meets(1.05, 1.1)
        assert self.metric.meets(1.1, 1.1)
        assert not self.metric.meets(1.2, 1.1)

    def test_better(self):
        assert self.metric.better(1.01, 1.5)
        assert not self.metric.better(1.5, 1.01)

    def test_improvement(self):
        assert self.metric.improvement(1.0, 1.2) == \
            __import__("pytest").approx(0.2)

    def test_sort_key_orders_better_larger(self):
        assert self.metric.sort_key(1.01) > self.metric.sort_key(1.5)

    def test_worst_value(self):
        assert self.metric.worst_value() == float("inf")


def test_name_defaults_to_function_name():
    assert AccuracyMetric(fn).name == "fn"


def test_repr_mentions_direction():
    assert "higher" in repr(AccuracyMetric(fn))
    assert "lower" in repr(AccuracyMetric(fn, higher_is_better=False))
