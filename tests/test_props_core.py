"""Property-based tests (hypothesis) for core data structures."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.autotuner.stats import (
    confidence_bound,
    fit_normal,
    normal_cdf,
    probability_within_fraction,
    student_t_cdf,
    welch_p_value,
)
from repro.config.decision_tree import SizeDecisionTree
from repro.errors import ConfigError
from repro.lang.scaling import resample_linear, resample_nearest
from repro.multigrid.grids import prolong, restrict_full_weighting

finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)


# ----------------------------------------------------------------------
# Decision trees
# ----------------------------------------------------------------------
@st.composite
def trees(draw):
    num_cutoffs = draw(st.integers(min_value=0, max_value=4))
    cutoffs = sorted(draw(st.lists(
        st.floats(min_value=1.0, max_value=1e5, allow_nan=False),
        min_size=num_cutoffs, max_size=num_cutoffs, unique=True)))
    leaves = draw(st.lists(st.integers(min_value=0, max_value=9),
                           min_size=num_cutoffs + 1,
                           max_size=num_cutoffs + 1))
    return SizeDecisionTree(leaves, cutoffs)


@settings(max_examples=60, deadline=None)
@given(tree=trees(), n=st.floats(min_value=0, max_value=1e6,
                                 allow_nan=False))
def test_tree_lookup_total(tree, n):
    assert tree.lookup(n) in tree.leaves


@settings(max_examples=60, deadline=None)
@given(tree=trees(), cutoff=st.floats(min_value=0.5, max_value=1e5,
                                      allow_nan=False))
def test_add_level_preserves_all_lookups(tree, cutoff):
    assume(cutoff not in tree.cutoffs)
    split = tree.add_level(cutoff)
    for n in list(tree.cutoffs) + [0.1, cutoff - 1e-6, cutoff, 1e6]:
        if n >= 0:
            assert split.lookup(n) == tree.lookup(n)


@settings(max_examples=60, deadline=None)
@given(tree=trees(), seed=st.integers(min_value=0, max_value=999))
def test_random_mutation_sequences_keep_wellformedness(tree, seed):
    rng = np.random.default_rng(seed)
    for _ in range(12):
        op = rng.integers(0, 4)
        try:
            if op == 0:
                tree = tree.add_level(float(rng.uniform(1, 1e5)))
            elif op == 1 and tree.num_levels:
                tree = tree.remove_level(
                    int(rng.integers(0, tree.num_levels)))
            elif op == 2:
                tree = tree.set_leaf(
                    int(rng.integers(0, len(tree.leaves))),
                    int(rng.integers(0, 10)))
            elif op == 3 and tree.num_levels:
                tree = tree.scale_cutoff(
                    int(rng.integers(0, tree.num_levels)),
                    float(rng.uniform(0.3, 3.0)))
        except ConfigError:
            continue
        cutoffs = tree.cutoffs
        assert all(b > a for a, b in zip(cutoffs, cutoffs[1:]))
        assert len(tree.leaves) == len(cutoffs) + 1


@settings(max_examples=60, deadline=None)
@given(tree=trees())
def test_tree_json_round_trip(tree):
    assert SizeDecisionTree.from_json(tree.to_json()) == tree


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(values=st.lists(finite_floats, min_size=2, max_size=30))
def test_fit_normal_bounds(values):
    fit = fit_normal(values)
    assert min(values) <= fit.mean <= max(values)
    assert fit.std >= 0


@settings(max_examples=60, deadline=None)
@given(x=st.floats(min_value=-30, max_value=30, allow_nan=False),
       df=st.floats(min_value=0.5, max_value=200))
def test_t_cdf_in_unit_interval_and_symmetric(x, df):
    p = student_t_cdf(x, df)
    assert 0.0 <= p <= 1.0
    assert p + student_t_cdf(-x, df) == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=60, deadline=None)
@given(values=st.lists(finite_floats, min_size=2, max_size=20))
def test_welch_p_value_range(values):
    shifted = [v + 1.0 for v in values]
    p = welch_p_value(values, shifted)
    assert 0.0 <= p <= 1.0


@settings(max_examples=60, deadline=None)
@given(values=st.lists(finite_floats, min_size=1, max_size=20),
       confidence=st.floats(min_value=0.5, max_value=0.999))
def test_confidence_bounds_bracket_mean(values, confidence):
    fit = fit_normal(values)
    lower = confidence_bound(values, confidence, side="lower")
    upper = confidence_bound(values, confidence, side="upper")
    # Tolerance: at confidence ~0.5 the quantile is ~0 up to the
    # bisection resolution, so the bounds coincide with the mean.
    slack = 1e-9 * (1.0 + abs(fit.mean))
    assert lower <= fit.mean + slack
    assert upper >= fit.mean - slack


@settings(max_examples=40, deadline=None)
@given(values=st.lists(finite_floats, min_size=1, max_size=10))
def test_identical_samples_always_within_fraction(values):
    assert probability_within_fraction(values, list(values)) == \
        pytest.approx(1.0)


# ----------------------------------------------------------------------
# Grid transfers and resamplers
# ----------------------------------------------------------------------
grid_exponents = st.integers(min_value=2, max_value=5)


@settings(max_examples=30, deadline=None)
@given(k=grid_exponents, seed=st.integers(0, 999))
def test_restrict_prolong_shapes_invert(k, seed):
    n = 2 ** k - 1
    rng = np.random.default_rng(seed)
    fine = rng.normal(size=(n, n))
    coarse, _ = restrict_full_weighting(fine)
    assert coarse.shape == ((n - 1) // 2, (n - 1) // 2)
    back, _ = prolong(coarse)
    assert back.shape == fine.shape


@settings(max_examples=30, deadline=None)
@given(k=grid_exponents, seed=st.integers(0, 999))
def test_transfer_operators_are_adjoint(k, seed):
    n = 2 ** k - 1
    nc = (n - 1) // 2
    rng = np.random.default_rng(seed)
    fine = rng.normal(size=(n, n))
    coarse = rng.normal(size=(nc, nc))
    restricted, _ = restrict_full_weighting(fine)
    prolonged, _ = prolong(coarse)
    assert float((restricted * coarse).sum()) == pytest.approx(
        float((fine * prolonged).sum()) / 4.0, rel=1e-9, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(length=st.integers(min_value=1, max_value=64),
       target=st.integers(min_value=1, max_value=64),
       seed=st.integers(0, 999))
def test_resamplers_produce_requested_length(length, target, seed):
    rng = np.random.default_rng(seed)
    signal = rng.normal(size=length)
    for resample in (resample_nearest, resample_linear):
        out = resample(signal, target)
        assert out.shape == (target,)
        assert np.all(np.isfinite(out))
        # Values stay inside the input's range (both are interpolants).
        assert out.min() >= signal.min() - 1e-9
        assert out.max() <= signal.max() + 1e-9
