"""Tests for population pruning and guided mutation."""

import numpy as np
import pytest

from repro.autotuner.candidate import Candidate
from repro.autotuner.comparison import Comparator, ComparisonSettings
from repro.autotuner.guided import guided_mutation
from repro.autotuner.pruning import k_fastest, prune_population
from repro.autotuner.testing import ProgramTestHarness
from repro.compiler.compile import compile_program
from repro.config.decision_tree import SizeDecisionTree

from tests.conftest import approxmean_inputs, make_approxmean_transform


@pytest.fixture
def setup():
    program, _ = compile_program(make_approxmean_transform())
    harness = ProgramTestHarness(program, approxmean_inputs, base_seed=0)
    comparator = Comparator(harness, ComparisonSettings(min_trials=2,
                                                        max_trials=5))
    return program, harness, comparator


def candidate_with_m(program, m: float) -> Candidate:
    return Candidate(program.default_config().with_entry(
        "approxmean@main.m", SizeDecisionTree([float(m)])))


class TestKFastest:
    def test_orders_by_cost(self, setup):
        program, harness, comparator = setup
        candidates = [candidate_with_m(program, m)
                      for m in (500, 10, 200, 50)]
        for candidate in candidates:
            harness.ensure_trials(candidate, 256, 2)
        top = k_fastest(candidates, 2, comparator, 256)
        costs = [c.results.mean_objective(256) for c in top]
        assert len(top) == 2
        assert costs == sorted(costs)
        assert costs[0] == 10

    def test_small_population_fully_sorted(self, setup):
        program, harness, comparator = setup
        candidates = [candidate_with_m(program, m) for m in (30, 10)]
        for candidate in candidates:
            harness.ensure_trials(candidate, 64, 2)
        top = k_fastest(candidates, 5, comparator, 64)
        assert [c.results.mean_objective(64) for c in top] == [10, 30]

    def test_discard_promotion(self, setup):
        """Step 4: a fast candidate stuck in DISCARD gets promoted."""
        program, harness, comparator = setup
        # Candidate with no trials sorts to the back of the rough sort
        # (mean objective inf) but is actually the fastest.
        fast_unmeasured = candidate_with_m(program, 1)
        slow = [candidate_with_m(program, m) for m in (100, 200, 300)]
        for candidate in slow:
            harness.ensure_trials(candidate, 64, 2)
        top = k_fastest(slow + [fast_unmeasured], 3, comparator, 64)
        assert fast_unmeasured in top

    def test_k_zero(self, setup):
        assert k_fastest([], 0, setup[2], 4) == []


class TestPrunePopulation:
    def test_keeps_k_per_bin(self, setup):
        program, harness, comparator = setup
        metric = harness.metric
        population = [candidate_with_m(program, m)
                      for m in (1, 2, 4, 16, 64, 5000)]
        for candidate in population:
            harness.ensure_trials(candidate, 512, 2)
        kept = prune_population(population, (0.5, 0.99), 2, comparator,
                                512, metric)
        assert 0 < len(kept) <= 5  # 2 bins x 2 + most accurate

    def test_keep_most_accurate_even_if_no_bin_met(self, setup):
        program, harness, comparator = setup
        metric = harness.metric
        population = [candidate_with_m(program, m) for m in (1, 2)]
        for candidate in population:
            harness.ensure_trials(candidate, 512, 2)
        kept = prune_population(population, (1.1,), 2, comparator, 512,
                                metric, keep_most_accurate=True)
        assert len(kept) == 1
        empty = prune_population(population, (1.1,), 2, comparator, 512,
                                 metric, keep_most_accurate=False)
        assert empty == []

    def test_no_duplicates(self, setup):
        program, harness, comparator = setup
        metric = harness.metric
        shared = candidate_with_m(program, 5000)
        harness.ensure_trials(shared, 512, 2)
        kept = prune_population([shared], (0.5, 0.9, 0.99), 2, comparator,
                                512, metric)
        assert kept == [shared]


class TestGuidedMutation:
    def test_climbs_to_target(self, setup):
        program, harness, _ = setup
        metric = harness.metric
        base = candidate_with_m(program, 1)
        harness.ensure_trials(base, 512, 2)
        population = [base]
        added = guided_mutation(population, harness, program.space,
                                (0.99,), 512, metric, min_trials=2,
                                max_evaluations=40)
        assert added, "hill climbing should add candidates"
        best = added[-1]
        assert best.meets_accuracy(512, 0.99, metric)

    def test_no_accuracy_variables_no_moves(self, setup):
        _, harness, _ = setup

        # A space with no accuracy variables.
        from repro.config.parameters import ParameterSpace, SwitchParam
        space = ParameterSpace([SwitchParam("s", ("a", "b"))])
        population = [Candidate(space.default_config())]
        added = guided_mutation(population, harness, space, (0.9,), 4,
                                harness.metric)
        assert added == []

    def test_respects_evaluation_budget(self, setup):
        program, harness, _ = setup
        metric = harness.metric
        base = candidate_with_m(program, 1)
        harness.ensure_trials(base, 512, 2)
        before = harness.trials_run
        guided_mutation([base], harness, program.space, (0.99,), 512,
                        metric, min_trials=2, max_evaluations=3)
        # 3 evaluations x 2 trials each, at most.
        assert harness.trials_run - before <= 3 * 2

    def test_empty_targets_noop(self, setup):
        program, harness, _ = setup
        base = candidate_with_m(program, 1)
        assert guided_mutation([base], harness, program.space, (), 4,
                               harness.metric) == []
