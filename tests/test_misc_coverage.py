"""Unit tests for remaining small surfaces: result objects, rendering,
instance key namespacing, and experiment result containers."""

import numpy as np
import pytest

from repro.compiler.program import ExecutionResult, Instance
from repro.experiments.figure6 import Figure6Result
from repro.experiments.figure8 import Figure8Result
from repro.experiments.table1 import Table1Result
from repro.lang.transform import Transform
from repro.multigrid.cycles import CycleShape, render_cycle
from repro.runtime.timing import Metrics
from repro.runtime.trace import ExecutionTrace


def make_instance(prefix="t@0.5", bin_target=0.5):
    transform = Transform("t", inputs=("x",), outputs=("y",))
    transform.rule(outputs=("y",), inputs=("x",))(lambda ctx, x: x)
    return Instance(prefix=prefix, transform=transform,
                    bin_target=bin_target, schedule=())


class TestInstanceKeys:
    def test_namespacing(self):
        instance = make_instance()
        assert instance.key("k") == "t@0.5.k"
        assert instance.choice_key("site") == "t@0.5.rule.site"
        assert instance.call_bin_key("sub") == "t@0.5.call.sub.bin"
        assert instance.order_key("r") == "t@0.5.order.r"

    def test_bin_target_carried(self):
        assert make_instance().bin_target == 0.5


class TestExecutionResult:
    def test_properties(self):
        result = ExecutionResult(outputs={"y": 1},
                                 metrics=Metrics(cost=5, wall_time=0.1),
                                 trace=ExecutionTrace())
        assert result.cost == 5
        assert result.wall_time == 0.1


class TestFigure6Result:
    def make(self):
        return Figure6Result(
            benchmark="binpacking", sizes=(8.0, 32.0),
            bins=(1.5, 1.1, 1.01),
            costs={1.5: {8.0: 10.0, 32.0: 20.0},
                   1.1: {8.0: 40.0, 32.0: 200.0}},
            unmet_bins=(1.01,))

    def test_reference_falls_back_to_met_bin(self):
        assert self.make().reference_bin == 1.1

    def test_speedups(self):
        result = self.make()
        assert result.speedup(1.5, 8.0) == pytest.approx(4.0)
        assert result.speedup(1.5, 32.0) == pytest.approx(10.0)
        assert result.speedup(1.01, 8.0) != result.speedup(1.01, 8.0)

    def test_render_mentions_unmet(self):
        rendered = self.make().render()
        assert "unmet" in rendered
        assert "x1.5" in rendered

    def test_no_bins_tuned_raises(self):
        result = Figure6Result(benchmark="x", sizes=(8.0,),
                               bins=(0.5,), costs={}, unmet_bins=(0.5,))
        with pytest.raises(ValueError):
            result.reference_bin


class TestTable1Result:
    def test_render(self):
        result = Table1Result(
            n=2048.0, optimal_k=45,
            rows=((0.1, 4, "random", "once"),
                  (0.95, 46, "k-means++", "100% stabilize")),
            unmet_bins=())
        rendered = result.render()
        assert "k optimal = 45" in rendered
        assert "k-means++" in rendered
        assert "100% stabilize" in rendered


class TestFigure8Result:
    def test_render_includes_sizes_and_legend(self):
        shape = CycleShape(steps=(("relax", 0), ("descend", 1),
                                  ("direct", 1), ("ascend", 0)),
                           top_size=7)
        result = Figure8Result(sizes=(7.0,), bins=(1.0,),
                               shapes={(7.0, 1.0): shape},
                               unmet_bins=())
        rendered = result.render()
        assert "n=7" in rendered
        assert "10^1" in rendered
        assert "D" in rendered

    def test_missing_shapes_skipped(self):
        result = Figure8Result(sizes=(7.0,), bins=(1.0, 3.0),
                               shapes={}, unmet_bins=(3.0,))
        assert "unmet" in result.render()


class TestCycleShapeCounts:
    def test_counts(self):
        shape = CycleShape(steps=(("relax", 0), ("relax", 1),
                                  ("direct", 2)), top_size=15)
        assert shape.counts() == {"relax": 2, "direct": 1}
        assert shape.depth == 2

    def test_render_level_labels_follow_grid_halving(self):
        shape = CycleShape(steps=(("relax", 0), ("relax", 1),
                                  ("relax", 2)), top_size=15)
        rendered = render_cycle(shape)
        assert "n=  15" in rendered
        assert "n=   7" in rendered
        assert "n=   3" in rendered
