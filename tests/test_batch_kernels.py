"""Batched-kernel equivalence: stacked calls equal per-slice loops.

The port of scipy's ``test_batch.py`` idiom: for every kernel that
accepts a leading batch dimension, the batched output must equal
stacking the scalar kernel's output over slices — across dtypes, batch
sizes B in {1, 3, 17}, and the degenerate B=0 — and the returned
operation count must be exactly B times the scalar count.

The multigrid/stencil kernels are elementwise numpy expressions, so
batched and scalar results are required to be *bit-identical*; the
batched banded solve and stacked CG reassociate reductions (einsum
over the batch axis), so those compare under a tight allclose.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.kernels import assign_clusters
from repro.linalg.banded import banded_cholesky_factor, banded_cholesky_solve
from repro.linalg.cg import conjugate_gradient
from repro.linalg.poisson_ops import (
    apply_laplacian_1d,
    apply_laplacian_2d,
    poisson_2d_banded,
)
from repro.multigrid.helmholtz3d import face_coefficients
from repro.multigrid.relax import (
    _MASK_CACHE,
    _checkerboard,
    sor_helmholtz_3d,
    sor_poisson_2d,
)
from repro.multigrid.grids import prolong, restrict_full_weighting

BATCH_SIZES = (1, 3, 17)
FLOAT_DTYPES = (np.float32, np.float64)


def rng_for(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


# ----------------------------------------------------------------------
# SOR relaxation
# ----------------------------------------------------------------------
class TestSorPoisson2d:
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    @pytest.mark.parametrize("dtype", FLOAT_DTYPES)
    def test_batched_equals_slice_loop(self, batch, dtype):
        rng = rng_for(batch)
        n = 15
        u = rng.standard_normal((batch, n, n)).astype(dtype)
        f = rng.standard_normal((batch, n, n)).astype(dtype)
        batched, batched_ops = sor_poisson_2d(u, f, 0.1, 1.4, 3)
        scalar_ops = None
        for i in range(batch):
            expected, scalar_ops = sor_poisson_2d(u[i], f[i], 0.1, 1.4, 3)
            assert np.array_equal(batched[i], expected)
        assert batched_ops == batch * scalar_ops

    @pytest.mark.parametrize("dtype", FLOAT_DTYPES)
    def test_dtype_preserved(self, dtype):
        rng = rng_for(7)
        u = rng.standard_normal((7, 7)).astype(dtype)
        f = rng.standard_normal((7, 7)).astype(dtype)
        result, _ = sor_poisson_2d(u, f, 0.1, 1.4, 2)
        assert result.dtype == dtype

    def test_non_float_promotes_to_float64(self):
        u = np.zeros((7, 7), dtype=np.int64)
        f = np.ones((7, 7), dtype=np.int64)
        result, _ = sor_poisson_2d(u, f, 0.1, 1.4, 1)
        assert result.dtype == np.float64

    def test_degenerate_empty_batch(self):
        empty = np.empty((0, 7, 7))
        result, ops = sor_poisson_2d(empty, empty, 0.1, 1.4, 2)
        assert result.shape == (0, 7, 7)
        assert ops == 0.0

    def test_checkerboard_masks_cached_and_frozen(self):
        red, black = _checkerboard((5, 5))
        assert (5, 5) in _MASK_CACHE
        assert not red.flags.writeable and not black.flags.writeable
        assert np.array_equal(red, ~black)
        again_red, _ = _checkerboard((5, 5))
        assert again_red is red  # same object, not rebuilt


class TestSorHelmholtz3d:
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    def test_batched_equals_slice_loop(self, batch):
        rng = rng_for(batch)
        n = 7
        phi = rng.standard_normal((batch, n, n, n))
        f = rng.standard_normal((batch, n, n, n))
        a = rng.uniform(0.5, 1.0, (n, n, n))
        faces = face_coefficients(rng.uniform(0.5, 1.0, (n, n, n)))
        batched, batched_ops = sor_helmholtz_3d(
            phi, f, a, faces, 0.125, 1.2, 2)
        scalar_ops = None
        for i in range(batch):
            expected, scalar_ops = sor_helmholtz_3d(
                phi[i], f[i], a, faces, 0.125, 1.2, 2)
            assert np.array_equal(batched[i], expected)
        assert batched_ops == batch * scalar_ops

    @pytest.mark.parametrize("dtype", FLOAT_DTYPES)
    def test_dtype_preserved(self, dtype):
        rng = rng_for(11)
        n = 5
        phi = rng.standard_normal((n, n, n)).astype(dtype)
        f = rng.standard_normal((n, n, n)).astype(dtype)
        a = rng.uniform(0.5, 1.0, (n, n, n))
        faces = face_coefficients(rng.uniform(0.5, 1.0, (n, n, n)))
        result, _ = sor_helmholtz_3d(phi, f, a, faces, 0.125, 1.2, 1)
        # The state keeps phi/f's dtype: float64 coefficient fields do
        # not silently upcast a float32 solve.
        assert result.dtype == dtype

    def test_degenerate_empty_batch(self):
        rng = rng_for(13)
        n = 5
        empty = np.empty((0, n, n, n))
        a = rng.uniform(0.5, 1.0, (n, n, n))
        faces = face_coefficients(rng.uniform(0.5, 1.0, (n, n, n)))
        result, ops = sor_helmholtz_3d(empty, empty, a, faces,
                                       0.125, 1.2, 2)
        assert result.shape == (0, n, n, n)
        assert ops == 0.0


# ----------------------------------------------------------------------
# Grid transfers
# ----------------------------------------------------------------------
class TestGridTransfers:
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    @pytest.mark.parametrize("dtype", FLOAT_DTYPES)
    def test_restrict_batched_equals_slice_loop(self, batch, dtype):
        rng = rng_for(batch)
        fine = rng.standard_normal((batch, 15, 15)).astype(dtype)
        batched, batched_ops = restrict_full_weighting(fine, core_ndim=2)
        assert batched.dtype == dtype
        scalar_ops = None
        for i in range(batch):
            expected, scalar_ops = restrict_full_weighting(fine[i])
            assert np.array_equal(batched[i], expected)
        assert batched_ops == batch * scalar_ops

    @pytest.mark.parametrize("batch", BATCH_SIZES)
    @pytest.mark.parametrize("dtype", FLOAT_DTYPES)
    def test_prolong_batched_equals_slice_loop(self, batch, dtype):
        rng = rng_for(batch)
        coarse = rng.standard_normal((batch, 7, 7)).astype(dtype)
        batched, batched_ops = prolong(coarse, core_ndim=2)
        assert batched.dtype == dtype
        scalar_ops = None
        for i in range(batch):
            expected, scalar_ops = prolong(coarse[i])
            assert np.array_equal(batched[i], expected)
        assert batched_ops == batch * scalar_ops

    def test_default_core_ndim_is_all_axes(self):
        rng = rng_for(5)
        fine = rng.standard_normal((7, 7))
        explicit, _ = restrict_full_weighting(fine, core_ndim=2)
        implicit, _ = restrict_full_weighting(fine)
        assert np.array_equal(explicit, implicit)

    def test_core_ndim_validation(self):
        with pytest.raises(ValueError):
            restrict_full_weighting(np.zeros((7, 7)), core_ndim=3)
        with pytest.raises(ValueError):
            prolong(np.zeros((3, 3)), core_ndim=0)

    def test_degenerate_empty_batch(self):
        coarse, ops = restrict_full_weighting(np.empty((0, 7, 7)),
                                              core_ndim=2)
        assert coarse.shape == (0, 3, 3)
        assert ops == 0.0
        fine, _ = prolong(np.empty((0, 3, 3)), core_ndim=2)
        assert fine.shape == (0, 7, 7)


# ----------------------------------------------------------------------
# Conjugate gradients
# ----------------------------------------------------------------------
class TestConjugateGradient:
    @staticmethod
    def operator(x):
        return apply_laplacian_1d(x, 0.1)

    @pytest.mark.parametrize("batch", BATCH_SIZES)
    def test_stacked_equals_slice_loop(self, batch):
        rng = rng_for(batch)
        n = 31
        b = rng.standard_normal((batch, n))
        x, norms, ops = conjugate_gradient(
            self.operator, b, iterations=25, operator_cost=5.0 * n,
            tolerance=1e-8)
        assert x.shape == (batch, n) and ops.shape == (batch,)
        for i in range(batch):
            xi, norms_i, ops_i = conjugate_gradient(
                self.operator, b[i], iterations=25, operator_cost=5.0 * n,
                tolerance=1e-8)
            np.testing.assert_allclose(x[i], xi, rtol=1e-12, atol=1e-12)
            assert len(norms[i]) == len(norms_i)
            np.testing.assert_allclose(norms[i], norms_i, rtol=1e-12)
            assert ops[i] == ops_i  # per-slice freezing charges the same

    def test_per_slice_early_stop(self):
        # One trivially converged slice (zero RHS) next to a live one:
        # the converged slice must freeze immediately and be charged
        # exactly what its scalar run is.
        rng = rng_for(42)
        n = 15
        b = np.vstack([np.zeros(n), rng.standard_normal(n)])
        _, norms, ops = conjugate_gradient(
            self.operator, b, iterations=10, operator_cost=5.0 * n,
            tolerance=1e-10)
        _, norms_zero, ops_zero = conjugate_gradient(
            self.operator, b[0], iterations=10, operator_cost=5.0 * n,
            tolerance=1e-10)
        assert len(norms[0]) == len(norms_zero) == 1
        assert ops[0] == ops_zero
        assert len(norms[1]) > 1

    def test_preconditioned_stacked(self):
        from repro.linalg.poisson_ops import laplacian_1d_diagonal
        rng = rng_for(9)
        n = 31
        diagonal = laplacian_1d_diagonal(n, 0.1)
        b = rng.standard_normal((4, n))
        x, _, _ = conjugate_gradient(
            self.operator, b, iterations=25, operator_cost=5.0 * n,
            apply_minv=lambda r: r / diagonal, preconditioner_cost=float(n),
            tolerance=1e-9)
        for i in range(4):
            xi, _, _ = conjugate_gradient(
                self.operator, b[i], iterations=25, operator_cost=5.0 * n,
                apply_minv=lambda r: r / diagonal,
                preconditioner_cost=float(n), tolerance=1e-9)
            np.testing.assert_allclose(x[i], xi, rtol=1e-12, atol=1e-12)

    def test_degenerate_empty_batch(self):
        x, norms, ops = conjugate_gradient(
            self.operator, np.empty((0, 8)), iterations=5,
            operator_cost=1.0)
        assert x.shape == (0, 8) and norms == [] and ops.shape == (0,)

    def test_three_dimensional_b_rejected(self):
        with pytest.raises(ValueError):
            conjugate_gradient(self.operator, np.zeros((2, 2, 2)),
                               iterations=1, operator_cost=1.0)


# ----------------------------------------------------------------------
# Banded Cholesky
# ----------------------------------------------------------------------
class TestBandedCholesky:
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    def test_stacked_factor_equals_slice_loop(self, batch):
        n = 5
        band = poisson_2d_banded(n, 0.125)
        # Vary the diagonal per slice so the batch is not degenerate.
        stacked = np.stack([band] * batch)
        for i in range(batch):
            stacked[i, 0, :] += 0.1 * i
        factors, batched_ops = banded_cholesky_factor(stacked)
        scalar_ops = None
        for i in range(batch):
            expected, scalar_ops = banded_cholesky_factor(stacked[i])
            assert np.array_equal(factors[i], expected)
        assert batched_ops == batch * scalar_ops

    @pytest.mark.parametrize("batch", BATCH_SIZES)
    def test_shared_factor_stacked_solve(self, batch):
        rng = rng_for(batch)
        n = 5
        factor, _ = banded_cholesky_factor(poisson_2d_banded(n, 0.125))
        rhs = rng.standard_normal((batch, n * n))
        solutions, batched_ops = banded_cholesky_solve(factor, rhs)
        scalar_ops = None
        for i in range(batch):
            expected, scalar_ops = banded_cholesky_solve(factor, rhs[i])
            np.testing.assert_allclose(solutions[i], expected,
                                       rtol=1e-12, atol=1e-14)
        assert batched_ops == batch * scalar_ops

    def test_scalar_path_unchanged(self):
        rng = rng_for(3)
        n = 7
        factor, _ = banded_cholesky_factor(poisson_2d_banded(n, 0.125))
        rhs = rng.standard_normal(n * n)
        x, _ = banded_cholesky_solve(factor, rhs)
        residual = np.linalg.norm(
            apply_laplacian_2d(x.reshape(n, n), 0.125).reshape(-1) - rhs)
        assert residual < 1e-8

    def test_not_positive_definite_raises_batched(self):
        band = np.stack([poisson_2d_banded(3, 0.25)] * 2)
        band[1, 0, :] = -1.0  # one bad slice poisons the batch
        with pytest.raises(np.linalg.LinAlgError):
            banded_cholesky_factor(band)

    def test_degenerate_empty_batch(self):
        factor, _ = banded_cholesky_factor(poisson_2d_banded(3, 0.25))
        solutions, ops = banded_cholesky_solve(factor, np.empty((0, 9)))
        assert solutions.shape == (0, 9)
        assert ops == 0.0


# ----------------------------------------------------------------------
# Poisson stencils
# ----------------------------------------------------------------------
class TestPoissonStencils:
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    def test_laplacian_1d_batched(self, batch):
        rng = rng_for(batch)
        x = rng.standard_normal((batch, 12))
        extra = rng.uniform(0.1, 1.0, 12)
        batched = apply_laplacian_1d(x, 0.2, extra)
        for i in range(batch):
            assert np.array_equal(batched[i],
                                  apply_laplacian_1d(x[i], 0.2, extra))

    @pytest.mark.parametrize("batch", BATCH_SIZES)
    def test_laplacian_2d_batched(self, batch):
        rng = rng_for(batch)
        u = rng.standard_normal((batch, 9, 9))
        batched = apply_laplacian_2d(u, 0.1)
        for i in range(batch):
            assert np.array_equal(batched[i],
                                  apply_laplacian_2d(u[i], 0.1))

    def test_degenerate_empty_batch(self):
        assert apply_laplacian_2d(np.empty((0, 5, 5)), 0.1).shape \
            == (0, 5, 5)


# ----------------------------------------------------------------------
# Cluster assignment
# ----------------------------------------------------------------------
class TestAssignClusters:
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    def test_batched_equals_slice_loop(self, batch):
        rng = rng_for(batch)
        points = rng.standard_normal((batch, 40, 3))
        centroids = rng.standard_normal((batch, 5, 3))
        assignments, batched_ops = assign_clusters(points, centroids)
        scalar_ops = None
        for i in range(batch):
            expected, scalar_ops = assign_clusters(points[i], centroids[i])
            assert np.array_equal(assignments[i], expected)
        assert batched_ops == batch * scalar_ops

    def test_shared_centroids_broadcast(self):
        rng = rng_for(1)
        points = rng.standard_normal((4, 20, 2))
        centroids = rng.standard_normal((3, 2))
        assignments, _ = assign_clusters(points, centroids)
        for i in range(4):
            expected, _ = assign_clusters(points[i], centroids)
            assert np.array_equal(assignments[i], expected)

    def test_one_dimensional_rejected(self):
        with pytest.raises(ValueError):
            assign_clusters(np.zeros(4), np.zeros((2, 2)))

    def test_degenerate_empty_batch(self):
        assignments, ops = assign_clusters(np.empty((0, 10, 2)),
                                           np.empty((0, 3, 2)))
        assert assignments.shape == (0, 10)
        assert ops == 0.0
