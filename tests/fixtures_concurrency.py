"""Violation fixtures for the concurrency / process-boundary passes.

One class (or function) per contract breach, each tagged with a
``noqa-analysis`` marker comment so ``test_concurrency_analysis.py``
can assert the finding's exact ``file:line``.  This module lives apart
from the test file on purpose: ``analyze_modules`` sweeps *every*
class a module defines, and the test classes themselves must not be
swept.
"""

from __future__ import annotations

import pickle
import threading
import time

from repro.contracts import (
    atomic_swapped,
    guarded_by,
    process_local,
    requires_lock,
    thread_affine,
)


# ----------------------------------------------------------------------
# REP501 — guarded field touched outside its lock
# ----------------------------------------------------------------------
@thread_affine("caller")
@guarded_by("_lock", "_items")
class BadGuard:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []

    def put(self, x):
        self._items.append(x)  # noqa-analysis: unguarded-mutation

    @requires_lock("_lock")
    def _flush(self):
        self._items.clear()

    def flush(self):
        self._flush()  # noqa-analysis: lockless-call

    def put_safely(self, x):  # negative control: no finding
        with self._lock:
            self._items.append(x)


# ----------------------------------------------------------------------
# REP502 — blocking call reachable on the event-loop thread
# REP503(b) — off-affinity mutation of loop-owned state
# ----------------------------------------------------------------------
@thread_affine("loop")
class BadLoop:
    def __init__(self):
        self._x = 0

    async def tick(self):
        time.sleep(0.1)  # noqa-analysis: loop-blocking

    @thread_affine("caller")
    def poke(self):
        self._x += 1  # noqa-analysis: cross-thread-write


# ----------------------------------------------------------------------
# REP503 — in-place mutation of an atomic-swap field
# ----------------------------------------------------------------------
@thread_affine("caller")
@atomic_swapped("_snapshot")
class BadSwap:
    def __init__(self):
        self._snapshot = ()

    def grow(self):
        self._snapshot += (1,)  # noqa-analysis: inplace-swap

    def replace(self):  # negative control: whole-object rebind is fine
        self._snapshot = (1,)


# ----------------------------------------------------------------------
# REP504 — lock-order inversion between two methods
# ----------------------------------------------------------------------
@guarded_by("_a", "_x")
@guarded_by("_b", "_y")
@thread_affine("caller")
class BadOrder:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()
        self._x = 0
        self._y = 0

    def one(self):
        with self._a:
            with self._b:  # noqa-analysis: order-a-then-b
                self._x = 1
                self._y = 1

    def two(self):
        with self._b:
            with self._a:  # noqa-analysis: order-b-then-a
                self._x = 2
                self._y = 2


# ----------------------------------------------------------------------
# REP505 — threading primitive in a class without a declared contract
# ----------------------------------------------------------------------
class NoContract:
    def __init__(self):
        self._lock = threading.Lock()  # noqa-analysis: undeclared-lock


# ----------------------------------------------------------------------
# REP602 — module-global mutation invisible to worker processes
# ----------------------------------------------------------------------
_CACHE: dict = {}
_COUNTER = 0

_DECLARED: dict = {}
process_local("_DECLARED")


def remember(key, value):
    _CACHE[key] = value  # noqa-analysis: global-container-mutation


def bump():
    global _COUNTER
    _COUNTER += 1  # noqa-analysis: global-rebind


def remember_declared(key, value):  # negative control: declared local
    _DECLARED[key] = value


# ----------------------------------------------------------------------
# REP603 — unpicklable state handed to a process-boundary sink
# ----------------------------------------------------------------------
def ship_lambda():
    return pickle.dumps(lambda: 1)  # noqa-analysis: lambda-to-sink


def ship_nested():
    def helper():
        return 1
    return pickle.dumps(helper)  # noqa-analysis: nested-to-sink


class Shipper:
    def work(self):
        return 1

    def ship(self):
        return pickle.dumps(self.work)  # noqa-analysis: method-to-sink

    def ship_data(self):  # negative control: data attribute, not method
        return pickle.dumps(self.payload)
