"""Tests for runtime support: cost model, wall timer, traces, errors."""

import time

import numpy as np
import pytest

from repro.autotuner import Autotuner, ProgramTestHarness, TunerSettings
from repro.compiler.compile import compile_program
from repro.errors import AccuracyError, ReproError
from repro.runtime.timing import (
    CostAccumulator,
    CostLimitExceeded,
    Metrics,
    WallTimer,
)
from repro.runtime.trace import ExecutionTrace, TraceEvent

from tests.conftest import approxmean_inputs, make_approxmean_transform


class TestCostAccumulator:
    def test_accumulates(self):
        cost = CostAccumulator()
        cost.add(3)
        cost.add(4.5)
        assert cost.units == 7.5

    def test_reset(self):
        cost = CostAccumulator()
        cost.add(10)
        cost.reset()
        assert cost.units == 0.0

    def test_limit_enforced(self):
        cost = CostAccumulator(limit=10.0)
        cost.add(9.0)
        with pytest.raises(CostLimitExceeded):
            cost.add(2.0)

    def test_no_limit(self):
        cost = CostAccumulator()
        cost.add(1e18)
        assert cost.units == 1e18


class TestWallTimer:
    def test_measures_elapsed(self):
        with WallTimer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009


class TestMetrics:
    def test_objective_selection(self):
        metrics = Metrics(cost=5.0, wall_time=0.25)
        assert metrics.objective("cost") == 5.0
        assert metrics.objective("time") == 0.25

    def test_unknown_objective(self):
        with pytest.raises(ValueError):
            Metrics().objective("energy")


class TestExecutionTrace:
    def test_record_and_filter(self):
        trace = ExecutionTrace()
        trace.record("a", 0, value=1)
        trace.record("b", 1, value=2)
        trace.record("a", 2, value=3)
        assert len(trace) == 3
        assert [e["value"] for e in trace.of_kind("a")] == [1, 3]

    def test_disabled_trace_records_nothing(self):
        trace = ExecutionTrace(enabled=False)
        trace.record("a", 0)
        assert len(trace) == 0

    def test_event_access(self):
        event = TraceEvent("k", 2, {"x": 7})
        assert event["x"] == 7
        assert event.get("y", "default") == "default"
        assert event.depth == 2


class TestWallClockObjective:
    def test_time_objective_tunes(self):
        """The identical pipeline works on wall-clock measurements."""
        program, _ = compile_program(make_approxmean_transform())
        harness = ProgramTestHarness(program, approxmean_inputs,
                                     objective="time", base_seed=3)
        settings = TunerSettings(input_sizes=(64.0, 512.0),
                                 rounds_per_size=1, mutation_attempts=4,
                                 min_trials=2, max_trials=4, seed=7,
                                 initial_random=1, objective="time",
                                 accuracy_confidence=None)
        result = Autotuner(program, harness, settings).tune()
        assert result.trials_run > 0
        n = result.sizes[-1]
        for candidate in result.best_per_bin.values():
            assert candidate.results.mean_objective(n) > 0

    def test_invalid_objective_rejected(self):
        program, _ = compile_program(make_approxmean_transform())
        with pytest.raises(ValueError):
            ProgramTestHarness(program, approxmean_inputs,
                               objective="energy")

    def test_metric_required(self):
        from repro.lang.transform import Transform
        plain = Transform("plain", inputs=("x",), outputs=("y",))
        plain.rule(outputs=("y",), inputs=("x",))(lambda ctx, x: x)
        program, _ = compile_program(plain)
        with pytest.raises(ReproError):
            ProgramTestHarness(program, lambda n, rng: {"x": 0})


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        from repro import errors
        for name in ("LanguageError", "CompileError", "ConfigError",
                     "TrainingError", "AccuracyError", "ExecutionError"):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_accuracy_error_payload(self):
        error = AccuracyError("failed", achieved=0.3, required=0.9)
        assert error.achieved == 0.3
        assert error.required == 0.9
