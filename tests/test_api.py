"""The repro.api lifecycle façade.

Two contracts matter:

1. **Delegation, not divergence** — `Project.tune()` must be the
   hand-wired `compile → harness → Autotuner` path, trial for trial:
   same seed, identical frontier, identical artifact JSON (digest),
   on both serial and process backend specs.
2. **Up-front validation** — malformed `TunerSettings`, backend
   specs, and preset names fail at construction with `ConfigError`,
   not deep inside the tuning loop.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np
import pytest

from repro.api import PRESETS, Project, Service, ServicePolicy, settings_for
from repro.autotuner import Autotuner, ProgramTestHarness, TunerSettings
from repro.compiler.compile import (
    compile_program,
    compiled_from_factory,
    factory_spec,
)
from repro.errors import CompileError, ConfigError
from repro.lang.transform import Transform
from repro.lang.tunables import accuracy_variable
from repro.runtime.backends import (
    ProcessPoolBackend,
    SerialBackend,
    ShardPlan,
    ThreadPoolBackend,
    backend_from_spec,
)
from repro.serving import ArtifactStore, FrontDoorStats

# ----------------------------------------------------------------------
# A cheap variable-accuracy transform built by a module-level factory,
# so both the façade and the hand-wired path share ("factory", ...)
# provenance (and process workers can rebuild the program).
# ----------------------------------------------------------------------


def _apimean_metric(outputs, inputs):
    estimate = float(outputs["est"])
    truth = float(np.mean(inputs["xs"]))
    return max(0.0, 1.0 - abs(estimate - truth) / (abs(truth) + 1e-9))


def _apimean_sub(ctx, xs):
    m = min(len(xs), int(ctx.param("m")))
    indices = ctx.rng.integers(0, len(xs), size=m)
    ctx.add_cost(m)
    return float(np.mean(xs[indices]))


def _apimean_full(ctx, xs):
    ctx.add_cost(2 * len(xs))
    return float(np.mean(xs))


def make_apimean() -> Transform:
    transform = Transform(
        "apimean", inputs=("xs",), outputs=("est",),
        accuracy_metric=_apimean_metric, accuracy_bins=(0.5, 0.9),
        tunables=[accuracy_variable("m", lo=1, hi=100000, default=4,
                                    direction=+1)])
    transform.rule(outputs=("est",), inputs=("xs",),
                   name="sub")(_apimean_sub)
    transform.rule(outputs=("est",), inputs=("xs",),
                   name="full")(_apimean_full)
    return transform


def apimean_inputs(n, rng):
    return {"xs": rng.normal(10.0, 1.0, size=max(2, int(n)))}


QUICK = dict(input_sizes=(4.0, 8.0), rounds_per_size=1,
             mutation_attempts=3, min_trials=2, max_trials=3,
             initial_random=1, guided_max_evaluations=6,
             accuracy_confidence=None, seed=5)

BASE_SEED = 3


def artifact_digest(artifact) -> str:
    payload = json.dumps(artifact.to_json(), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


# ----------------------------------------------------------------------
# Façade / hand-wired equivalence
# ----------------------------------------------------------------------
class TestFacadeEquivalence:
    @pytest.mark.parametrize("spec, backend_factory", [
        ("serial", SerialBackend),
        ("process:2", lambda: ProcessPoolBackend(max_workers=2)),
    ])
    def test_tune_matches_hand_wired_path(self, spec, backend_factory):
        """Same seed through Project.tune() and the hand-wired
        Autotuner yields identical frontiers and artifact digests."""
        program, _ = compiled_from_factory(factory_spec(make_apimean))
        with ProgramTestHarness(program, apimean_inputs,
                                base_seed=BASE_SEED,
                                backend=backend_factory()) as harness:
            manual = Autotuner(program, harness,
                               TunerSettings(**QUICK)).tune()

        with Project.from_transform(make_apimean, apimean_inputs,
                                    backend=spec,
                                    base_seed=BASE_SEED) as project:
            facade = project.tune(**QUICK)

        assert facade.frontier() == manual.frontier()
        assert facade.result.trials_run == manual.trials_run
        assert facade.unmet_bins == manual.unmet_bins
        assert artifact_digest(facade.artifact()) == \
            artifact_digest(manual.to_artifact())

    def test_run_matches_tuned_program(self):
        with Project.from_transform(make_apimean, apimean_inputs,
                                    base_seed=BASE_SEED) as project:
            handle = project.tune(**QUICK)
        tuned = handle.tuned_program()
        xs = {"xs": np.random.default_rng(0).normal(10.0, 1.0, size=64)}
        direct = tuned.run(xs, 64, accuracy=0.9, seed=4)
        via_handle = handle.run(xs, 64, accuracy=0.9, seed=4)
        assert via_handle.outputs == direct.outputs
        assert via_handle.bin_target == direct.bin_target


# ----------------------------------------------------------------------
# Project construction & ownership
# ----------------------------------------------------------------------
class TestProject:
    def test_benchmark_sizes_resolve_within_bounds(self):
        with Project.from_benchmark("poisson") as project:
            settings = project.settings("smoke", max_input_size=15)
            # Poisson grids are 2^k - 1: the benchmark's own sizes are
            # used, bounded by the preset's max_input_size.
            assert settings.sizes() == (3.0, 7.0, 15.0)

    def test_explicit_sizes_win_over_benchmark(self):
        with Project.from_benchmark("poisson") as project:
            settings = project.settings("smoke", input_sizes=(7.0,))
            assert settings.sizes() == (7.0,)

    def test_bounds_excluding_every_size_raise(self):
        with Project.from_benchmark("poisson") as project:
            with pytest.raises(ConfigError, match="training size"):
                project.settings(max_input_size=2.0)

    def test_close_shuts_backend_and_is_idempotent(self):
        project = Project.from_transform(make_apimean, apimean_inputs,
                                         backend="threads:2")
        _ = project.harness
        project.close()
        project.close()
        with pytest.raises(ConfigError, match="closed"):
            _ = project.harness

    def test_owned_cache_persists_on_close(self, tmp_path):
        cache_path = tmp_path / "trials.json"
        with Project.from_transform(make_apimean, apimean_inputs,
                                    cache=cache_path,
                                    base_seed=BASE_SEED) as project:
            project.tune(**QUICK)
            executed = project.trials_executed
        assert executed > 0
        assert cache_path.exists()
        with Project.from_transform(make_apimean, apimean_inputs,
                                    cache=cache_path,
                                    base_seed=BASE_SEED) as warm:
            warm.tune(**QUICK)
            assert warm.trials_executed == 0

    def test_explicit_settings_log_wins_over_project_log(self):
        ambient, explicit = [], []
        with Project.from_transform(make_apimean, apimean_inputs,
                                    base_seed=BASE_SEED,
                                    log=ambient.append) as project:
            project.tune(TunerSettings(**QUICK,
                                       log=explicit.append))
            assert explicit and not ambient
            project.tune(**QUICK)   # no explicit log: ambient wins
            assert ambient

    def test_factory_gives_provenance(self):
        with Project.from_transform(make_apimean,
                                    apimean_inputs) as project:
            assert project.program.provenance == \
                ("factory", f"{make_apimean.__module__}:make_apimean")

    def test_project_objective_threads_into_settings(self):
        with Project.from_transform(make_apimean, apimean_inputs,
                                    objective="time",
                                    base_seed=BASE_SEED) as project:
            assert project.settings(**QUICK).objective == "time"
            handle = project.tune(**QUICK)     # no redundant override
            assert handle.result.settings.objective == "time"
            # An explicit conflicting choice still fails loudly.
            from repro.errors import TrainingError
            with pytest.raises(TrainingError, match="objective"):
                project.tune(objective="cost", **QUICK)

    def test_non_importable_factory_rejected(self):
        with pytest.raises(CompileError, match="module-level"):
            factory_spec(lambda: None)

    def test_rebound_factory_name_rejected(self, monkeypatch):
        import sys
        module = sys.modules[make_apimean.__module__]
        monkeypatch.setattr(module, "make_apimean", make_apimean)
        alias = make_apimean
        monkeypatch.setattr(module, "make_apimean", lambda: None)
        with pytest.raises(CompileError, match="resolve back"):
            factory_spec(alias)

    def test_missing_generator_rejected(self):
        with pytest.raises(ConfigError, match="training-input"):
            Project.from_transform(make_apimean, None)


# ----------------------------------------------------------------------
# Backend spec strings (the one shared parser)
# ----------------------------------------------------------------------
class TestBackendSpec:
    @pytest.mark.parametrize("spec, kind, workers", [
        ("serial", SerialBackend, None),
        ("threads", ThreadPoolBackend, None),
        ("threads:8", ThreadPoolBackend, 8),
        ("thread:2", ThreadPoolBackend, 2),
        ("process:4", ProcessPoolBackend, 4),
        ("processes:3", ProcessPoolBackend, 3),
    ])
    def test_specs_parse(self, spec, kind, workers):
        backend = backend_from_spec(spec)
        assert isinstance(backend, kind)
        if workers is not None:
            assert backend.max_workers == workers

    def test_instance_passes_through(self):
        backend = SerialBackend()
        assert backend_from_spec(backend) is backend

    @pytest.mark.parametrize("spec, match", [
        ("warp:4", "unknown execution backend"),
        ("serial:2", "no worker count"),
        ("threads:many", "not an integer"),
        ("threads:0", ">= 1"),
        ("threads:", "without a worker count"),
        ("serial:", "without a worker count"),
    ])
    def test_bad_specs_raise_config_error(self, spec, match):
        with pytest.raises(ConfigError, match=match):
            backend_from_spec(spec)

    def test_non_string_rejected(self):
        with pytest.raises(ConfigError, match="spec"):
            backend_from_spec(7)

    # --- the async:<shards>x<workers> serving form -------------------
    def test_async_spec_requires_opt_in(self):
        # Trial-execution callers must not receive a ShardPlan where
        # an ExecutionBackend is expected.
        with pytest.raises(ConfigError, match="serving front door"):
            backend_from_spec("async:4x2")

    def test_async_spec_parses_with_opt_in(self):
        plan = backend_from_spec("async:4x2", allow_sharded=True)
        assert plan == ShardPlan(shards=4, workers=2)
        assert plan.shard_backend_spec == "process:2"
        assert str(plan) == "async:4x2"

    @pytest.mark.parametrize("spec, match", [
        ("async", "<shards>x<workers>"),
        ("async:", "<shards>x<workers>"),
        ("async:4", "<shards>x<workers>"),
        ("async:x2", "<shards>x<workers>"),
        ("async:axb", "integers"),
        ("async:0x2", ">= 1"),
        ("async:2x0", ">= 1"),
    ])
    def test_bad_async_specs_raise_config_error(self, spec, match):
        with pytest.raises(ConfigError, match=match):
            backend_from_spec(spec, allow_sharded=True)

    def test_unknown_spec_error_lists_async_form(self):
        with pytest.raises(ConfigError,
                           match="async:<shards>x<workers>"):
            backend_from_spec("warp:4")


# ----------------------------------------------------------------------
# Settings presets
# ----------------------------------------------------------------------
class TestPresets:
    def test_known_presets_resolve(self):
        for name in PRESETS:
            assert isinstance(settings_for(name), TunerSettings)

    def test_overrides_win(self):
        settings = settings_for("smoke", max_trials=9)
        assert settings.max_trials == 9
        assert settings.rounds_per_size == \
            PRESETS["smoke"]["rounds_per_size"]

    def test_unknown_preset_raises(self):
        with pytest.raises(ConfigError, match="unknown settings preset"):
            settings_for("warp-speed")

    def test_settings_instance_passes_through(self):
        settings = TunerSettings(seed=11)
        assert settings_for(settings) is settings
        assert settings_for(settings, seed=12).seed == 12


# ----------------------------------------------------------------------
# TunerSettings construction-time validation
# ----------------------------------------------------------------------
class TestSettingsValidation:
    @pytest.mark.parametrize("kwargs, match", [
        (dict(input_sizes=()), "empty"),
        (dict(input_sizes=(8.0, 4.0)), "strictly increasing"),
        (dict(input_sizes=(4.0, 4.0)), "strictly increasing"),
        (dict(input_sizes=(0.0, 4.0)), "positive"),
        (dict(min_input_size=128.0, max_input_size=64.0),
         "exceeds max_input_size"),
        (dict(min_input_size=0.0), "positive"),
        (dict(min_input_size=-2.0), "positive"),
        (dict(objective="energy"), "objective"),
        (dict(require_targets="explode"), "require_targets"),
        (dict(rounds_per_size=-1), "rounds_per_size"),
        (dict(min_trials=0), "min_trials"),
        (dict(min_trials=5, max_trials=4), "max_trials"),
        (dict(mutation_attempts=-1), "mutation_attempts"),
        (dict(k_per_bin=0), "k_per_bin"),
        (dict(initial_random=-1), "initial_random"),
        (dict(accuracy_confidence=1.0), "accuracy_confidence"),
        (dict(accuracy_confidence=0.0), "accuracy_confidence"),
        (dict(guided_max_evaluations=0), "guided_max_evaluations"),
    ])
    def test_invalid_settings_raise_config_error(self, kwargs, match):
        with pytest.raises(ConfigError, match=match):
            TunerSettings(**kwargs)

    def test_valid_edge_cases_pass(self):
        # Zero rounds (test-only tuning) and None confidence are legal.
        TunerSettings(rounds_per_size=0, accuracy_confidence=None)
        TunerSettings(input_sizes=(7.0,))
        TunerSettings(min_input_size=64.0, max_input_size=64.0)


# ----------------------------------------------------------------------
# Harness context manager
# ----------------------------------------------------------------------
class TestHarnessContextManager:
    def test_with_block_closes_backend(self):
        program, _ = compile_program(make_apimean())
        backend = ThreadPoolBackend(max_workers=2)
        with ProgramTestHarness(program, apimean_inputs,
                                backend=backend) as harness:
            assert harness.backend is backend
            # Force the pool into existence so close() has work to do.
            backend._ensure_pool()
        assert backend._pool is None  # close() ran


# ----------------------------------------------------------------------
# Service assembly
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def deployed_store(tmp_path_factory):
    root = tmp_path_factory.mktemp("store")
    with Project.from_transform(make_apimean, apimean_inputs,
                                base_seed=BASE_SEED) as project:
        handle = project.tune(**QUICK)
        deployment = handle.deploy(root)
    return deployment.store, handle


class TestService:
    def test_load_serves_and_matches_single_call(self, deployed_store):
        store, handle = deployed_store
        tuned = handle.tuned_program()
        rng = np.random.default_rng(1)
        with Service.load(store, program="apimean") as service:
            inputs = {"xs": rng.normal(10.0, 1.0, size=32)}
            response = service.serve_one(service.request(
                inputs, 32, accuracy=0.9, seed=6))
            assert response.ok
            direct = tuned.run(inputs, 32, accuracy=0.9, seed=6)
            assert response.outputs == direct.outputs
            assert response.bin_target == direct.bin_target

    def test_load_defaults_to_every_stored_program(self, deployed_store):
        store, _ = deployed_store
        with Service.load(store) as service:
            assert service.programs == ("apimean",)

    def test_empty_store_raises(self, tmp_path):
        with pytest.raises(ConfigError, match="no programs"):
            Service.load(tmp_path / "empty")

    def test_tag_only_store_names_the_tag_mismatch(self, tmp_path,
                                                   deployed_store):
        _, handle = deployed_store
        deployment = handle.deploy(tmp_path / "canary-only",
                                   tag="canary")
        with pytest.raises(ConfigError, match="tag 'default'"):
            Service.load(deployment.store)
        # Naming the tag in the policy makes the same store loadable.
        with Service.load(deployment.store,
                          policy=ServicePolicy(tag="canary")) as svc:
            assert svc.programs == ("apimean",)

    def test_request_needs_program_when_ambiguous(self, deployed_store):
        store, handle = deployed_store
        with Service.load(store) as service:
            request = service.request({"xs": np.zeros(4)}, 4)
            assert request.program == "apimean"
            # A second hosted program makes the default ambiguous.
            service.engine.register("other", handle.tuned_program())
            with pytest.raises(ConfigError, match="name the program"):
                service.request({"xs": np.zeros(4)}, 4)
            still_fine = service.request({"xs": np.zeros(4)}, 4,
                                         program="apimean")
            assert still_fine.program == "apimean"

    def test_retune_backend_instance_rejected(self):
        with pytest.raises(ConfigError, match="spec string"):
            ServicePolicy(retune_backend=SerialBackend())

    def test_time_objective_retunes_propagate_to_harness(self,
                                                         tmp_path):
        program, _ = compiled_from_factory(factory_spec(make_apimean))
        time_settings = TunerSettings(objective="time", **QUICK)
        service = Service(ArtifactStore(tmp_path), engine=None,
                          telemetry=None,
                          policy=ServicePolicy(retune=time_settings),
                          training_inputs=apimean_inputs)
        with service._harness_factory("apimean", program) as harness:
            assert harness.objective == "time"

    def test_time_objective_rejects_parallel_retune_backend(
            self, deployed_store):
        store, _ = deployed_store
        policy = ServicePolicy(
            retune=TunerSettings(objective="time", **QUICK),
            retune_backend="threads:2")
        with Service.load(store, program="apimean", policy=policy,
                          training_inputs=apimean_inputs) as service:
            with pytest.raises(ConfigError, match="serial"):
                service.poll()

    def test_deploy_retain_needs_a_path_created_store(
            self, deployed_store):
        store, handle = deployed_store
        with pytest.raises(ConfigError, match="retain"):
            handle.deploy(store, retain=5)

    def test_adaptive_needs_retune_settings(self, deployed_store):
        store, _ = deployed_store
        with Service.load(store, program="apimean") as service:
            with pytest.raises(ConfigError, match="retune"):
                service.poll()

    def test_adaptive_controller_assembles_from_policy(
            self, deployed_store):
        store, handle = deployed_store
        policy = ServicePolicy(retune="smoke",
                               retune_overrides={"seed": 21},
                               slice_trials=10)
        with Service.load(store, program="apimean", policy=policy,
                          training_inputs=apimean_inputs) as service:
            assert service.poll() == []       # no traffic, no drift
            assert service.check_drift() == {}
            assert service.events == []
            controller = service.controller
            assert controller.slice_trials == 10
            resolved = controller.settings(
                "apimean", handle.result.program)
            assert resolved.seed == 21

    def test_retune_settings_respect_benchmark_sizes(self, tmp_path):
        """A preset-based retune of a size-constrained benchmark must
        train on the benchmark's own sizes, not the generic sweep
        (which would crash poisson's generator on n=2)."""
        from repro.suite import get_benchmark
        spec = get_benchmark("poisson")
        program, _ = spec.compile()
        service = Service(ArtifactStore(tmp_path), engine=None,
                          telemetry=None,
                          policy=ServicePolicy(retune="smoke"))
        settings = service._settings_factory("poisson", program)
        assert settings.input_sizes == (3.0, 7.0, 15.0)
        with service._harness_factory("poisson", program) as harness:
            # The retune harness inherits the spec's per-trial budget.
            assert harness.cost_limit == spec.cost_limit

    def test_duplicate_program_names_collapse(self, deployed_store):
        store, handle = deployed_store
        with Service.load(store, program="apimean",
                          programs=("apimean",),
                          compiled=handle.result.program) as service:
            assert service.programs == ("apimean",)

    def test_deploy_reports_the_version_it_wrote(self, tmp_path,
                                                 deployed_store):
        _, handle = deployed_store
        first = handle.deploy(tmp_path / "store")
        second = handle.deploy(first.store)
        assert (first.version, second.version) == (1, 2)
        assert first.store.latest_version("apimean") == 2
        unserved = handle.deploy(first.store, set_latest=False)
        assert unserved.version == 3
        assert first.store.latest_version("apimean") == 2
        assert ArtifactStore.parse_version(unserved.path) == 3

    def test_parse_version_rejects_non_version_paths(self):
        from repro.errors import ArtifactError
        with pytest.raises(ArtifactError, match="version-file"):
            ArtifactStore.parse_version("default.json")

    def test_discovery_skips_programs_without_the_tag(
            self, tmp_path, deployed_store):
        _, handle = deployed_store
        deployment = handle.deploy(tmp_path / "mixed")
        handle.deploy(deployment.store, tag="canary")
        # Fake a second program stored only under the canary tag.
        import shutil
        source = str(tmp_path / "mixed" / "apimean")
        shutil.copytree(source, str(tmp_path / "mixed" / "ghost"))
        import os
        os.unlink(str(tmp_path / "mixed" / "ghost" / "default.json"))
        shutil.rmtree(str(tmp_path / "mixed" / "ghost" / ".history" /
                          "default"))
        with Service.load(deployment.store) as service:
            assert service.programs == ("apimean",)

    def test_failing_settings_resolution_never_builds_a_harness(
            self, deployed_store):
        """A raising settings resolver must not leak a fresh harness
        (and backend) on every poll tick (controller launch order)."""
        from repro.serving import ServingTelemetry
        from repro.serving.controller import RetuneController
        from repro.serving.telemetry import DriftEvent
        store, handle = deployed_store
        tuned = handle.tuned_program()

        class StubEngine:
            telemetry = ServingTelemetry()
            programs = ("apimean",)

            def program_for(self, name):
                return tuned

        class ClosingBackend(SerialBackend):
            def __init__(self):
                super().__init__()
                self.closed = False

            def close(self):
                self.closed = True

        built = []

        def harness_factory(name, compiled):
            harness = ProgramTestHarness(compiled, apimean_inputs,
                                         backend=ClosingBackend())
            built.append(harness)
            return harness

        def raising_settings(name, compiled):
            raise ConfigError("no sizes fit")

        controller = RetuneController(
            StubEngine(), store, harness_factory=harness_factory,
            settings=raising_settings)
        controller.check_drift = lambda: {"apimean": [DriftEvent(
            program="apimean", target=0.9, observed=None,
            stored=None)]}
        with pytest.raises(ConfigError, match="no sizes"):
            controller.poll()
        assert built == []   # settings resolved before harness build

        # And when construction fails *after* the harness exists (an
        # objective mismatch), the harness's backend is closed.
        controller.settings = TunerSettings(objective="time", **QUICK)
        with pytest.raises(Exception, match="objective"):
            controller.poll()
        assert len(built) == 1
        assert built[0].backend.closed

    def test_telemetry_snapshot_reflects_traffic(self, deployed_store):
        store, _ = deployed_store
        rng = np.random.default_rng(2)
        with Service.load(store, program="apimean") as service:
            service.serve([service.request(
                {"xs": rng.normal(10.0, 1.0, size=16)}, 16,
                accuracy=0.9, seed=i) for i in range(5)])
            snap = service.snapshot(0.9)
            assert snap.served == 5
            assert snap.samples == 5


# ----------------------------------------------------------------------
# Sharded service (async backend -> FrontDoor tier)
# ----------------------------------------------------------------------
class TestShardedService:
    @pytest.mark.parametrize("kwargs, match", [
        (dict(queue_limit=0), "queue_limit"),
        (dict(deadline=0.0), "deadline"),
        (dict(batch_window=-0.1), "batch_window"),
        (dict(shed_low_watermark=0.9, shed_high_watermark=0.1),
         "watermark"),
        (dict(shed_max_level=-1), "shed_max_level"),
    ])
    def test_policy_validation(self, kwargs, match):
        with pytest.raises(ConfigError, match=match):
            ServicePolicy(**kwargs)

    def test_shard_plan_helper(self):
        assert ServicePolicy(backend="async:2x1").shard_plan() \
            == ShardPlan(shards=2, workers=1)
        assert ServicePolicy().shard_plan() is None
        assert ServicePolicy(backend="process:2").shard_plan() is None

    def test_shedding_policy_uses_deadline_as_p95_budget(self):
        policy = ServicePolicy(deadline=0.5)
        assert policy.shedding_policy().p95_budget == 0.5
        assert ServicePolicy(shedding=False).shedding_policy() is None

    def test_async_backend_builds_front_door(self, deployed_store):
        store, handle = deployed_store
        tuned = handle.tuned_program()
        rng = np.random.default_rng(3)
        policy = ServicePolicy(backend="async:2x1",
                               shard_backend="serial")
        with Service.load(store, program="apimean",
                          policy=policy) as service:
            assert service.engine is None
            assert service.frontdoor is not None
            assert service.frontdoor.shards == 2
            assert service.programs == ("apimean",)
            inputs = {"xs": rng.normal(10.0, 1.0, size=32)}
            response = service.serve_one(service.request(
                inputs, 32, accuracy=0.9, seed=6))
            assert response.ok
            direct = tuned.run(inputs, 32, accuracy=0.9, seed=6)
            assert response.outputs == direct.outputs
            assert response.bin_target == direct.bin_target
            stats = service.stats()
            assert isinstance(stats, FrontDoorStats)
            assert stats.submitted == stats.completed == 1

    def test_adaptive_loop_unavailable_when_sharded(self,
                                                    deployed_store):
        store, _ = deployed_store
        policy = ServicePolicy(backend="async:2x1",
                               shard_backend="serial", retune="smoke")
        with Service.load(store, program="apimean", policy=policy,
                          training_inputs=apimean_inputs) as service:
            with pytest.raises(ConfigError, match="front door"):
                service.poll()
