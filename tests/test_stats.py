"""Tests for the statistical machinery, using scipy as the oracle."""

import math

import numpy as np
import pytest
import scipy.stats

from repro.autotuner.stats import (
    confidence_bound,
    fit_normal,
    normal_cdf,
    probability_within_fraction,
    regularized_incomplete_beta,
    student_t_cdf,
    welch_p_value,
    welch_t_statistic,
)


class TestFitNormal:
    def test_matches_numpy(self):
        values = [1.0, 2.0, 4.0, 8.0]
        fit = fit_normal(values)
        assert fit.mean == pytest.approx(np.mean(values))
        assert fit.std == pytest.approx(np.std(values, ddof=1))
        assert fit.count == 4

    def test_single_sample(self):
        fit = fit_normal([3.0])
        assert fit.mean == 3.0
        assert fit.std == 0.0
        assert fit.is_singular()

    def test_empty(self):
        fit = fit_normal([])
        assert fit.count == 0
        assert math.isnan(fit.mean)

    def test_stderr(self):
        fit = fit_normal([1.0, 3.0])
        assert fit.stderr == pytest.approx(fit.std / math.sqrt(2))

    def test_constant_values_singular(self):
        assert fit_normal([5.0, 5.0, 5.0]).is_singular()


class TestNormalCdf:
    @pytest.mark.parametrize("x", [-3.0, -1.0, 0.0, 0.5, 2.5])
    def test_matches_scipy(self, x):
        assert normal_cdf(x) == pytest.approx(scipy.stats.norm.cdf(x),
                                              abs=1e-12)

    def test_shift_scale(self):
        assert normal_cdf(3.0, mean=3.0, std=2.0) == pytest.approx(0.5)

    def test_degenerate_std(self):
        assert normal_cdf(1.0, mean=2.0, std=0.0) == 0.0
        assert normal_cdf(3.0, mean=2.0, std=0.0) == 1.0


class TestIncompleteBeta:
    @pytest.mark.parametrize("a,b,x", [
        (0.5, 0.5, 0.3), (2.0, 3.0, 0.7), (10.0, 0.5, 0.99),
        (1.0, 1.0, 0.42), (5.0, 5.0, 0.5),
    ])
    def test_matches_scipy(self, a, b, x):
        assert regularized_incomplete_beta(a, b, x) == pytest.approx(
            scipy.stats.beta.cdf(x, a, b), abs=1e-10)

    def test_boundaries(self):
        assert regularized_incomplete_beta(2, 3, 0.0) == 0.0
        assert regularized_incomplete_beta(2, 3, 1.0) == 1.0


class TestStudentT:
    @pytest.mark.parametrize("t,df", [
        (0.0, 5), (1.0, 3), (-2.5, 10), (4.0, 1), (-0.3, 24.7),
    ])
    def test_matches_scipy(self, t, df):
        assert student_t_cdf(t, df) == pytest.approx(
            scipy.stats.t.cdf(t, df), abs=1e-9)

    def test_invalid_df(self):
        with pytest.raises(ValueError):
            student_t_cdf(1.0, 0)

    def test_infinite_t(self):
        assert student_t_cdf(float("inf"), 3) == 1.0
        assert student_t_cdf(float("-inf"), 3) == 0.0


class TestWelch:
    def test_statistic_matches_scipy(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, 12).tolist()
        y = rng.normal(0.5, 2, 9).tolist()
        t, df = welch_t_statistic(x, y)
        ref = scipy.stats.ttest_ind(x, y, equal_var=False)
        assert t == pytest.approx(ref.statistic)
        assert welch_p_value(x, y) == pytest.approx(ref.pvalue, abs=1e-9)

    def test_identical_distributions_large_p(self):
        x = [1.0, 2.0, 3.0, 4.0]
        assert welch_p_value(x, list(x)) == pytest.approx(1.0)

    def test_clearly_different_small_p(self):
        x = [1.0, 1.1, 0.9, 1.05]
        y = [10.0, 10.2, 9.9, 10.1]
        assert welch_p_value(x, y) < 1e-6

    def test_too_few_samples_returns_one(self):
        assert welch_p_value([1.0], [2.0, 3.0]) == 1.0

    def test_zero_variance_equal_means(self):
        assert welch_p_value([2.0, 2.0], [2.0, 2.0]) == pytest.approx(1.0)

    def test_zero_variance_different_means(self):
        assert welch_p_value([2.0, 2.0], [3.0, 3.0]) == 0.0

    def test_statistic_needs_two_samples(self):
        with pytest.raises(ValueError):
            welch_t_statistic([1.0], [1.0, 2.0])


class TestProbabilityWithinFraction:
    def test_identical_paired_samples(self):
        x = [10.0, 10.0, 10.0]
        assert probability_within_fraction(x, list(x)) == \
            pytest.approx(1.0)

    def test_large_difference_probability_zero(self):
        x = [10.0, 10.1, 9.9]
        y = [20.0, 20.1, 19.9]
        assert probability_within_fraction(x, y) < 0.01

    def test_small_consistent_difference(self):
        x = [10.001, 10.0005, 10.0008]
        y = [10.0, 10.0, 10.0]
        assert probability_within_fraction(x, y, 0.01) > 0.95

    def test_no_samples(self):
        assert probability_within_fraction([], []) == 0.0

    def test_singular_fit_inside_threshold(self):
        assert probability_within_fraction([10.0], [10.0]) == 1.0
        assert probability_within_fraction([20.0], [10.0]) == 0.0


class TestConfidenceBound:
    def test_lower_below_mean(self):
        values = [10.0, 11.0, 9.0, 10.5, 9.5]
        bound = confidence_bound(values, 0.95, side="lower")
        assert bound < np.mean(values)

    def test_upper_above_mean(self):
        values = [10.0, 11.0, 9.0]
        assert confidence_bound(values, 0.95, side="upper") > \
            np.mean(values)

    def test_matches_normal_quantile(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        fit = fit_normal(values)
        z = scipy.stats.norm.ppf(0.95)
        expected = fit.mean - z * fit.stderr
        assert confidence_bound(values, 0.95) == pytest.approx(
            expected, abs=1e-6)

    def test_single_sample_returns_value(self):
        assert confidence_bound([7.0], 0.99) == 7.0

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            confidence_bound([1.0, 2.0], side="middle")

    def test_empty_nan(self):
        assert math.isnan(confidence_bound([], 0.95))
