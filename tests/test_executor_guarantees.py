"""Tests for tuned-program execution, verify_accuracy, and guarantees."""

import numpy as np
import pytest

from repro.autotuner import Autotuner, ProgramTestHarness, TunerSettings
from repro.compiler.compile import compile_program
from repro.errors import AccuracyError, TrainingError
from repro.lang.metrics import AccuracyMetric
from repro.runtime.executor import TunedProgram
from repro.runtime.guarantees import (
    fixed_accuracy_metric,
    statistical_guarantee,
)

from tests.conftest import approxmean_inputs, make_approxmean_transform


@pytest.fixture(scope="module")
def tuned():
    program, _ = compile_program(make_approxmean_transform())
    harness = ProgramTestHarness(program, approxmean_inputs, base_seed=3)
    settings = TunerSettings(input_sizes=(16.0, 64.0, 256.0),
                             rounds_per_size=2, mutation_attempts=6,
                             min_trials=2, max_trials=5, seed=7,
                             initial_random=1,
                             accuracy_confidence=None)
    result = Autotuner(program, harness, settings).tune()
    return program, result.tuned_program()


class TestTunedProgram:
    def test_bins_sorted_least_to_most_accurate(self, tuned):
        _, tuned_program = tuned
        assert list(tuned_program.bins) == sorted(tuned_program.bins)

    def test_dynamic_bin_lookup(self, tuned):
        _, tuned_program = tuned
        target, _ = tuned_program.config_for_accuracy(0.7)
        assert target == 0.9
        target, _ = tuned_program.config_for_accuracy(0.95)
        assert target == 0.99

    def test_lookup_beyond_best_falls_back(self, tuned):
        _, tuned_program = tuned
        target, _ = tuned_program.config_for_accuracy(0.99999)
        assert target == 0.99

    def test_select_exposes_fallback(self, tuned):
        _, tuned_program = tuned
        assert not tuned_program.select(0.7).fallback
        decision = tuned_program.select(0.99999)
        assert decision.target == 0.99
        assert decision.fallback

    def test_run_records_bin_and_fallback(self, tuned, rng):
        """An unsatisfiable accuracy request is served by the most
        accurate bin, but the degradation is recorded, not silent."""
        _, tuned_program = tuned
        inputs = approxmean_inputs(64, rng)
        result = tuned_program.run(inputs, 64, accuracy=0.7)
        assert result.bin_target == 0.9
        assert not result.fallback
        assert result.escalations == 0
        degraded = tuned_program.run(inputs, 64, accuracy=0.99999)
        assert degraded.bin_target == 0.99
        assert degraded.fallback

    def test_run_default_uses_most_accurate(self, tuned, rng):
        _, tuned_program = tuned
        inputs = approxmean_inputs(256, rng)
        result = tuned_program.run(inputs, 256)
        assert "est" in result.outputs

    def test_run_verify_records_accuracy(self, tuned, rng):
        _, tuned_program = tuned
        inputs = approxmean_inputs(256, rng)
        result = tuned_program.run(inputs, 256, accuracy=0.9, verify=True)
        assert result.metrics.accuracy is not None
        assert result.metrics.accuracy >= 0.9

    def test_run_exact_bin(self, tuned, rng):
        _, tuned_program = tuned
        inputs = approxmean_inputs(256, rng)
        result = tuned_program.run(inputs, 256, bin_target=0.5)
        assert "est" in result.outputs

    def test_run_unknown_bin_rejected(self, tuned, rng):
        _, tuned_program = tuned
        with pytest.raises(TrainingError):
            tuned_program.run({"xs": np.ones(4)}, 4, bin_target=0.123)

    def test_run_both_selectors_rejected(self, tuned):
        _, tuned_program = tuned
        with pytest.raises(ValueError):
            tuned_program.run({"xs": np.ones(4)}, 4, accuracy=0.9,
                              bin_target=0.9)

    def test_verify_escalates_and_fails_cleanly(self, tuned, rng):
        _, tuned_program = tuned
        inputs = approxmean_inputs(64, rng)
        # Impossible requirement: accuracy can never exceed 1.0.
        with pytest.raises(AccuracyError) as excinfo:
            tuned_program.run(inputs, 64, accuracy=1.5, verify=True)
        assert excinfo.value.required == 1.5
        assert excinfo.value.achieved is not None

    def test_save_load_round_trip(self, tuned, tmp_path, rng):
        program, tuned_program = tuned
        path = tmp_path / "tuned.json"
        tuned_program.save(path)
        loaded = TunedProgram.load(program, path)
        assert loaded.bins == tuned_program.bins
        inputs = approxmean_inputs(64, rng)
        a = tuned_program.run(inputs, 64, seed=5)
        b = loaded.run(inputs, 64, seed=5)
        assert a.outputs["est"] == b.outputs["est"]

    def test_save_writes_versioned_artifact_with_guarantees(
            self, tuned, tmp_path):
        """save() persists the schema-versioned artifact format, and
        the per-bin guarantees survive the round trip."""
        import json as _json
        program, tuned_program = tuned
        path = tmp_path / "artifact.json"
        tuned_program.save(path)
        payload = _json.loads(path.read_text())
        assert payload["schema_version"] == 1
        assert payload["program"] == "approxmean"
        loaded = TunedProgram.load(program, path)
        assert loaded.guarantees == tuned_program.guarantees
        assert loaded.guarantees  # tuning attached real guarantees

    def test_load_legacy_flat_format(self, tuned, tmp_path, rng):
        """The pre-artifact flat {bin: config} JSON still loads."""
        import json as _json
        program, tuned_program = tuned
        path = tmp_path / "legacy.json"
        path.write_text(_json.dumps(
            {f"{target:g}": config.to_json()
             for target, config in tuned_program.bin_configs.items()}))
        loaded = TunedProgram.load(program, path)
        assert loaded.bins == tuned_program.bins
        inputs = approxmean_inputs(32, rng)
        assert loaded.run(inputs, 32, seed=2).outputs["est"] == \
            tuned_program.run(inputs, 32, seed=2).outputs["est"]

    def test_load_rejects_undeclared_bins(self, tuned, tmp_path):
        """Keys that parse as floats but name bins the program never
        declared must raise, naming the stray bins."""
        import json as _json
        program, tuned_program = tuned
        path = tmp_path / "stray.json"
        config = next(iter(tuned_program.bin_configs.values()))
        path.write_text(_json.dumps({"0.75": config.to_json(),
                                     "0.9": config.to_json()}))
        with pytest.raises(TrainingError, match="0.75"):
            TunedProgram.load(program, path)

    def test_load_rejects_non_bin_keys(self, tuned, tmp_path):
        import json as _json
        program, tuned_program = tuned
        path = tmp_path / "bad.json"
        config = next(iter(tuned_program.bin_configs.values()))
        path.write_text(_json.dumps({"not-a-bin": config.to_json()}))
        with pytest.raises(TrainingError, match="not-a-bin"):
            TunedProgram.load(program, path)

    def test_empty_bin_configs_rejected(self, tuned):
        program, _ = tuned
        with pytest.raises(TrainingError):
            TunedProgram(program, {})

    def test_undeclared_bins_rejected_at_construction(self, tuned):
        program, tuned_program = tuned
        config = next(iter(tuned_program.bin_configs.values()))
        with pytest.raises(TrainingError, match="0.123"):
            TunedProgram(program, {0.123: config})


class TestStatisticalGuarantee:
    metric = AccuracyMetric(lambda o, i: 0.0, higher_is_better=True)

    def test_holds_for_comfortable_margin(self):
        accuracies = [0.95, 0.96, 0.94, 0.95, 0.96]
        guarantee = statistical_guarantee(accuracies, 0.5, self.metric)
        assert guarantee.holds
        assert guarantee.bound < np.mean(accuracies)

    def test_fails_for_borderline_noisy(self):
        accuracies = [0.51, 0.49, 0.52, 0.48]
        guarantee = statistical_guarantee(accuracies, 0.5, self.metric,
                                          confidence=0.99)
        assert not guarantee.holds

    def test_lower_is_better_uses_upper_bound(self):
        metric = AccuracyMetric(lambda o, i: 0.0, higher_is_better=False)
        ratios = [1.02, 1.03, 1.01]
        guarantee = statistical_guarantee(ratios, 1.1, metric)
        assert guarantee.holds
        assert guarantee.bound > np.mean(ratios)

    def test_str_mentions_verdict(self):
        guarantee = statistical_guarantee([0.9, 0.9], 0.5, self.metric)
        assert "holds" in str(guarantee)


class TestFixedAccuracyMetric:
    def test_constant_value(self):
        metric = fixed_accuracy_metric(0.75)
        assert metric.compute({}, {}) == 0.75

    def test_singular_distribution(self):
        """Hand-proven accuracies make the fitted normal a point mass."""
        from repro.autotuner.stats import fit_normal
        metric = fixed_accuracy_metric(0.75)
        samples = [metric.compute({}, {}) for _ in range(5)]
        assert fit_normal(samples).is_singular()
