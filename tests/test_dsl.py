"""The class-based DSL: lowering, batched diagnostics, and the
DSL-vs-imperative equivalence guarantees.

The two contracts that matter:

1. **Lowering is total** — a DSL-declared benchmark compiles to an
   *identical* program as its imperatively built twin: same
   config-space digest, same instances, same training info, and the
   same tuned frontier for a fixed seed.
2. **Errors batch** — a broken declaration reports every mistake in
   one ``Diagnostics`` pass, each with a source location, instead of
   failing fast on the first.
"""

import numpy as np
import pytest

from repro.autotuner import Autotuner, ProgramTestHarness, TunerSettings
from repro.compiler.compile import compile_program
from repro.errors import CompileError, ConfigError, LanguageError
from repro.lang import (
    Transform,
    accuracy_metric,
    accuracy_variable,
    allocator,
    call,
    check,
    cutoff,
    describe,
    for_enough,
    precision,
    rule,
    switch,
    transform,
)
from repro.lang.metrics import AccuracyMetric
from repro.lang.transform import CallSite
from repro.runtime.backends import backend_from_spec


def _unit_metric(outputs, inputs):
    return 1.0


def make_dsl_pair():
    """A small DSL transform exercising every declaration form."""

    @transform(inputs=("xs",), through=("mid",), outputs=("out",),
               accuracy_bins=(0.5, 0.9))
    class pipelineish:
        iters = for_enough(max_iters=9, default=3)
        level = accuracy_variable(lo=0, hi=4, default=1, direction=+1)
        block = cutoff(lo=1, hi=64, default=8)
        mode = switch(choices=("a", "b"), default="a")

        @accuracy_metric
        def unit(outputs, inputs):
            return 1.0

        @rule(outputs=("mid",))
        def stage_one(ctx, xs):
            return xs * 1.0

        @rule(outputs=("mid",))
        def stage_one_alt(ctx, xs):
            return xs * 1.0

        @rule
        def stage_two(ctx, mid):
            return mid + float(ctx.param("level"))

    return pipelineish


class TestLowering:
    def test_returns_a_transform(self):
        lowered = make_dsl_pair()
        assert isinstance(lowered, Transform)
        assert lowered.name == "pipelineish"

    def test_explicit_name_overrides_class_name(self):
        @transform(name="renamed", inputs=("a",), outputs=("b",))
        class whatever:
            @rule
            def r(ctx, a):
                return a

        assert whatever.name == "renamed"

    def test_tunable_names_inferred_from_attributes(self):
        lowered = make_dsl_pair()
        assert [t.name for t in lowered.tunables] == [
            "iters", "level", "block", "mode"]
        by_name = {t.name: t for t in lowered.tunables}
        assert by_name["iters"].is_accuracy_variable
        assert by_name["iters"].hi == 9
        assert by_name["level"].accuracy_direction == +1
        assert by_name["mode"].choices == ("a", "b")

    def test_rule_names_and_inputs_inferred(self):
        lowered = make_dsl_pair()
        rules = {r.name: r for r in lowered.rules}
        assert set(rules) == {"stage_one", "stage_one_alt", "stage_two"}
        assert rules["stage_one"].inputs == ("xs",)
        assert rules["stage_two"].inputs == ("mid",)
        # outputs default to the transform's declared outputs
        assert rules["stage_two"].outputs == ("out",)
        assert rules["stage_one"].outputs == ("mid",)

    def test_metric_from_decorated_method(self):
        lowered = make_dsl_pair()
        assert isinstance(lowered.accuracy_metric, AccuracyMetric)
        assert lowered.accuracy_metric.name == "unit"
        assert lowered.accuracy_bins == (0.5, 0.9)

    def test_metric_wrapper_form_keeps_name_and_direction(self):
        @transform(inputs=("a",), outputs=("b",), accuracy_bins=(1.5, 1.1))
        class lowbetter:
            metric = accuracy_metric(_unit_metric, name="ratio",
                                     higher_is_better=False)

            @rule
            def r(ctx, a):
                return a

        assert lowbetter.accuracy_metric.name == "ratio"
        assert not lowbetter.accuracy_metric.higher_is_better
        # bins sorted least -> most accurate under the lower-is-better
        # metric
        assert lowbetter.accuracy_bins == (1.5, 1.1)

    def test_call_site_names_inferred(self):
        @transform(inputs=("a",), outputs=("b",))
        class caller:
            sub = call("callee")
            pinned = call("callee", accuracy=0.9)

            @rule
            def r(ctx, a):
                return a

        assert caller.call_sites["sub"] == CallSite("sub", "callee", None)
        assert caller.call_sites["pinned"].accuracy == 0.9

    def test_rule_wrapper_form_forwards_options(self):
        """rule(fn, ...) as a plain wrapper keeps outputs/granularity
        (the adaptive_serving style over pre-existing functions)."""

        def seed_column(ctx, j, out, points):
            out[:, j] = 0.0

        def solve(ctx, points, centers):
            return np.zeros(len(points))

        @transform(inputs=("points",), through=("centers",),
                   outputs=("labels",),
                   allocators={"centers": lambda ctx, data:
                               np.empty((2, 2))})
        class wrapped:
            init = rule(seed_column, outputs=("centers",),
                        granularity="column")
            finish = rule(solve, name="renamed_solve")

        init = next(r for r in wrapped.rules if r.name == "init")
        assert init.granularity == "column"
        assert init.outputs == ("centers",)
        assert init.inputs == ("points",)
        assert any(r.name == "renamed_solve" for r in wrapped.rules)

    def test_column_rule_with_allocator_method(self):
        @transform(inputs=("points",), through=("centers",),
                   outputs=("labels",))
        class colrule:
            @allocator("centers")
            def centers(ctx, data):
                return np.empty((2, 3))

            @rule(outputs=("centers",), granularity="column")
            def init(ctx, j, out, points):
                out[:, j] = j

            @rule
            def solve(ctx, points, centers):
                return np.zeros(len(points))

        assert "centers" in colrule.allocators
        init = next(r for r in colrule.rules if r.name == "init")
        assert init.granularity == "column"
        assert init.inputs == ("points",)
        program, _ = compile_program(colrule)
        result = program.execute({"points": np.zeros(4)}, 4,
                                 program.default_config())
        assert result.outputs["labels"].shape == (4,)

    def test_rules_can_be_added_after_lowering(self):
        """The lowered Transform stays the imperative escape hatch
        (the bin-packing benchmark registers its rules in a loop)."""

        @transform(inputs=("a",), outputs=("b",))
        class openended:
            pass

        openended.rule(outputs=("b",), inputs=("a",),
                       name="late")(lambda ctx, a: a)
        program, _ = compile_program(openended)
        assert [r.name for r in openended.rules] == ["late"]

    def test_named_tunable_attribute_must_match(self):
        with pytest.raises(LanguageError, match="omit the name"):
            @transform(inputs=("a",), outputs=("b",))
            class mismatched:
                foo = accuracy_variable("bar", 1, 2)

                @rule
                def r(ctx, a):
                    return a

    def test_matching_named_tunable_attribute_accepted(self):
        @transform(inputs=("a",), outputs=("b",))
        class matched:
            foo = accuracy_variable("foo", 1, 2)

            @rule
            def r(ctx, a):
                return a

        assert matched.tunables[0].name == "foo"

    def test_plain_helpers_ignored(self):
        @transform(inputs=("a",), outputs=("b",))
        class with_helpers:
            CONSTANT = 42

            def helper(x):
                return x + 1

            @rule
            def r(ctx, a):
                return with_helpers.helper(a)

        assert [r.name for r in with_helpers.rules] == ["r"]
        assert len(with_helpers.tunables) == 0


class TestDiagnosticsBatching:
    def test_broken_declaration_reports_every_error_with_locations(self):
        """Acceptance: >= 2 distinct errors in one pass, each carrying
        a source location."""
        with pytest.raises(LanguageError) as exc_info:
            @transform(inputs=("a",), outputs=("b",))
            class broken:
                bad_domain = accuracy_variable(lo=5, hi=1)

                @rule
                def r1(ctx, nonexistent):
                    return 0

                @rule(granularity="column")
                def r2(ctx, a):
                    return 0

        diagnostics = exc_info.value.diagnostics
        assert len(diagnostics) >= 2
        messages = {e.message for e in diagnostics}
        assert len(messages) >= 2
        located = [e for e in diagnostics if e.location is not None]
        assert len(located) >= 2
        assert all(e.location.filename.endswith("test_dsl.py")
                   for e in located)

    def test_nameless_tunable_outside_class_rejected(self):
        decl = accuracy_variable(lo=1, hi=2)
        with pytest.raises(LanguageError, match="without a name"):
            Transform("t", inputs=("a",), outputs=("b",),
                      tunables=[decl])

    def test_named_decl_in_imperative_api_resolves_to_param(self):
        """A TunableDecl that received a name (from a plain class
        body) is resolved by the imperative API, not stored raw."""

        class namespace:
            m = accuracy_variable(lo=1, hi=10, default=2)

        lowered = Transform("t", inputs=("a",), outputs=("b",),
                            tunables=[namespace.m])
        assert lowered.tunables[0].name == "m"
        assert lowered.tunables[0].hi == 10
        added = Transform("t2", inputs=("a",), outputs=("b",))
        added.add_tunable(namespace.m)
        assert added.tunables[0].name == "m"

    def test_shared_declaration_rebinds_per_class(self):
        """One nameless declaration bound under different attribute
        names in different class bodies gets each class's name."""
        shared = for_enough(max_iters=6)

        @transform(inputs=("a",), outputs=("b",))
        class one:
            x = shared

            @rule
            def r(ctx, a):
                return a

        @transform(inputs=("a",), outputs=("b",))
        class two:
            y = shared

            @rule
            def r(ctx, a):
                return a

        assert [t.name for t in one.tunables] == ["x"]
        assert [t.name for t in two.tunables] == ["y"]

    def test_switch_bad_default_batched_with_location(self):
        """A nameless switch with an out-of-domain default reports
        through the batched pass under its inferred name."""
        with pytest.raises(LanguageError) as exc_info:
            @transform(inputs=("a",), outputs=("b",))
            class badswitch:
                mode = switch(choices=("a", "b"), default="z")

                @rule
                def r(ctx, nope):
                    return 0

        diagnostics = exc_info.value.diagnostics
        assert len(diagnostics) == 2
        entry = next(e for e in diagnostics if "mode" in e.message)
        assert "'z'" in entry.message
        assert entry.location is not None

    def test_nameless_tunable_error_names_declaration_site(self):
        decl = for_enough(max_iters=5)
        with pytest.raises(LanguageError, match="test_dsl.py"):
            Transform("t", inputs=("a",), outputs=("b",),
                      tunables=[decl])

    def test_missing_required_arguments_fail_loudly(self):
        with pytest.raises(LanguageError, match="max_iters"):
            for_enough("x")
        with pytest.raises(LanguageError, match="lo, hi"):
            accuracy_variable("x")
        with pytest.raises(LanguageError, match="choices"):
            switch("x")

    def test_missing_required_arguments_batched_in_class_body(self):
        """Nameless declarations defer missing-argument errors into
        the batched pass instead of aborting the class body."""
        with pytest.raises(LanguageError) as exc_info:
            @transform(inputs=("a",), outputs=("b",))
            class incomplete:
                first = accuracy_variable()
                second = for_enough()

                @rule
                def r(ctx, a):
                    return a

        diagnostics = exc_info.value.diagnostics
        assert len(diagnostics) == 2
        rendered = diagnostics.render()
        assert "lo, hi" in rendered
        assert "max_iters" in rendered
        assert all(e.location is not None for e in diagnostics)

    def test_switch_default_must_be_a_choice(self):
        with pytest.raises(LanguageError, match="not one of"):
            switch("mode", choices=("a", "b"), default="z")

    def test_varargs_rule_rejected(self):
        with pytest.raises(LanguageError, match="inputs=..."):
            @transform(inputs=("a",), outputs=("b",))
            class varargs:
                @rule
                def r(ctx, *rest):
                    return 0

    def test_duplicate_rule_names_batched(self):
        with pytest.raises(LanguageError) as exc_info:
            @transform(inputs=("a",), outputs=("b",))
            class duped:
                @rule(name="same")
                def r1(ctx, a):
                    return a

                @rule(name="same")
                def r2(ctx, a):
                    return a

        assert any("duplicate rule" in e.message
                   for e in exc_info.value.diagnostics)

    def test_duplicate_metric_reported(self):
        with pytest.raises(LanguageError, match="more than one"):
            @transform(inputs=("a",), outputs=("b",))
            class twometrics:
                m1 = accuracy_metric(_unit_metric)
                m2 = accuracy_metric(_unit_metric)

                @rule
                def r(ctx, a):
                    return a

    def test_compile_batches_errors_across_transforms(self):
        """One compile pass reports the unknown call target AND the
        unproduced datum together."""
        root = Transform("root", inputs=("a",), outputs=("b", "c"),
                         calls=[CallSite("sub", "missing")])
        root.rule(outputs=("b",), inputs=("a",))(lambda ctx, a: a)
        with pytest.raises(CompileError) as exc_info:
            compile_program(root)
        diagnostics = exc_info.value.diagnostics
        assert len(diagnostics) >= 2
        rendered = diagnostics.render()
        assert "missing" in rendered
        assert "'c'" in rendered

    def test_call_accuracy_on_fixed_accuracy_callee_rejected(self):
        leaf = Transform("leaf", inputs=("x",), outputs=("y",))
        leaf.rule(outputs=("y",), inputs=("x",))(lambda ctx, x: x)
        root = Transform("root", inputs=("a",), outputs=("b",),
                         calls=[CallSite("sub", "leaf", accuracy=0.9)])
        root.rule(outputs=("b",), inputs=("a",))(lambda ctx, a: a)
        with pytest.raises(CompileError,
                           match="declares no accuracy metric"):
            compile_program(root, [leaf])

    def test_non_finite_call_accuracy_rejected(self):
        leaf = Transform("leaf", inputs=("x",), outputs=("y",),
                         accuracy_metric=_unit_metric)
        leaf.rule(outputs=("y",), inputs=("x",))(lambda ctx, x: x)
        root = Transform("root", inputs=("a",), outputs=("b",),
                         calls=[CallSite("sub", "leaf",
                                         accuracy=float("nan"))])
        root.rule(outputs=("b",), inputs=("a",))(lambda ctx, a: a)
        with pytest.raises(CompileError, match="finite"):
            compile_program(root, [leaf])

    def test_validate_standalone_still_fails_fast(self):
        bare = Transform("t", inputs=("a",), outputs=("b",))
        with pytest.raises(LanguageError):
            bare.validate()


# ----------------------------------------------------------------------
# DSL / imperative equivalence — the lowering proof.
#
# The imperative twins below re-declare two suite benchmarks through
# the plain Transform API (the documented lowering target), against
# the same kernels.  Identical config spaces are checked structurally;
# identical *behaviour* is checked by running the full autotuner on
# both with a fixed seed and comparing frontiers and per-bin
# configurations.
# ----------------------------------------------------------------------
def build_imagecompression_twin() -> Transform:
    from repro.linalg.svd import (rank_k_reconstruction,
                                  singular_triplets_full,
                                  singular_triplets_topk)
    from repro.suite import imagecompression as mod

    twin = Transform(
        "imagecompression",
        inputs=("matrix",),
        outputs=("approx",),
        accuracy_metric=AccuracyMetric(mod._metric, "log_rms_ratio"),
        accuracy_bins=mod.ACCURACY_BINS,
        tunables=[accuracy_variable("k", lo=1, hi=mod.MAX_RANK,
                                    default=1, direction=+1)],
    )

    @twin.rule(outputs=("approx",), inputs=("matrix",), name="hybrid_qr")
    def hybrid_qr(ctx, matrix):
        k = mod._clamped_k(ctx, matrix)
        sigma, left, right, ops = singular_triplets_full(matrix, k)
        approx, reconstruction_ops = rank_k_reconstruction(
            sigma, left, right)
        ctx.add_cost(ops + reconstruction_ops)
        ctx.record("svd", algorithm="hybrid_qr", k=k)
        return approx

    @twin.rule(outputs=("approx",), inputs=("matrix",),
               name="bisection_topk")
    def bisection_topk(ctx, matrix):
        k = mod._clamped_k(ctx, matrix)
        sigma, left, right, ops = singular_triplets_topk(matrix, k,
                                                         ctx.rng)
        approx, reconstruction_ops = rank_k_reconstruction(
            sigma, left, right)
        ctx.add_cost(ops + reconstruction_ops)
        ctx.record("svd", algorithm="bisection_topk", k=k)
        return approx

    return twin


def build_preconditioner_twin() -> Transform:
    from repro.linalg.poisson_ops import laplacian_1d_diagonal
    from repro.linalg.precond import (jacobi_preconditioner,
                                      polynomial_preconditioner)
    from repro.suite import preconditioner as mod

    twin = Transform(
        "preconditioner",
        inputs=("b_rhs", "extra_diag"),
        outputs=("x",),
        accuracy_metric=AccuracyMetric(mod._metric, "log_residual_drop"),
        accuracy_bins=mod.ACCURACY_BINS,
        tunables=[
            for_enough("iterations", max_iters=3000, default=10),
            accuracy_variable("degree", lo=1, hi=8, default=2,
                              direction=0),
            precision("precision"),
        ],
    )

    @twin.rule(outputs=("x",), inputs=("b_rhs", "extra_diag"), name="cg")
    def plain_cg(ctx, b_rhs, extra_diag):
        return mod._run_cg(ctx, b_rhs, extra_diag)

    @twin.rule(outputs=("x",), inputs=("b_rhs", "extra_diag"),
               name="jacobi_pcg")
    def jacobi_pcg(ctx, b_rhs, extra_diag):
        diagonal = laplacian_1d_diagonal(len(b_rhs), mod.SPACING,
                                         extra_diag,
                                         dtype=b_rhs.dtype)
        apply_minv, cost = jacobi_preconditioner(diagonal)
        return mod._run_cg(ctx, b_rhs, extra_diag, apply_minv, cost)

    @twin.rule(outputs=("x",), inputs=("b_rhs", "extra_diag"),
               name="polynomial_pcg")
    def polynomial_pcg(ctx, b_rhs, extra_diag):
        n = len(b_rhs)
        degree = int(ctx.param("degree"))
        lambda_max = 4.0 / (mod.SPACING * mod.SPACING)
        if len(extra_diag):
            lambda_max += float(np.max(extra_diag))
        apply_minv, cost = polynomial_preconditioner(
            lambda v: mod._apply_operator(v, extra_diag), degree,
            1.0 / lambda_max, 5.0 * n, n)
        return mod._run_cg(ctx, b_rhs, extra_diag, apply_minv, cost)

    return twin


EQUIVALENCE_CASES = {
    "imagecompression": (build_imagecompression_twin,
                         dict(input_sizes=(6.0, 10.0))),
    "preconditioner": (build_preconditioner_twin,
                       dict(input_sizes=(16.0, 32.0))),
}

TWIN_SETTINGS = dict(rounds_per_size=1, mutation_attempts=3,
                     min_trials=2, max_trials=3, initial_random=1,
                     guided_max_evaluations=6,
                     accuracy_confidence=None, seed=17)


class TestDslImperativeEquivalence:
    @pytest.mark.parametrize("name", sorted(EQUIVALENCE_CASES))
    def test_identical_config_space_and_training_info(self, name):
        from repro.suite import get_benchmark
        twin_builder, _ = EQUIVALENCE_CASES[name]
        dsl_program, dsl_info = get_benchmark(name).compile()
        imp_program, imp_info = compile_program(twin_builder())
        assert dsl_program.space.digest() == imp_program.space.digest()
        assert sorted(dsl_program.instances) == \
            sorted(imp_program.instances)
        assert dsl_info.to_xml() == imp_info.to_xml()

    @pytest.mark.parametrize("name", sorted(EQUIVALENCE_CASES))
    def test_identical_frontier_for_fixed_seed(self, name):
        from repro.suite import get_benchmark
        twin_builder, sizes = EQUIVALENCE_CASES[name]
        spec = get_benchmark(name)
        settings = TunerSettings(**TWIN_SETTINGS, **sizes)

        def tune(program):
            with ProgramTestHarness(program, spec.generate,
                                    base_seed=2) as harness:
                return Autotuner(program, harness, settings).tune()

        dsl_result = tune(spec.compile()[0])
        imp_result = tune(compile_program(twin_builder())[0])
        assert dsl_result.frontier() == imp_result.frontier()
        assert dsl_result.trials_run == imp_result.trials_run
        assert list(dsl_result.best_per_bin) == \
            list(imp_result.best_per_bin)
        for target, candidate in dsl_result.best_per_bin.items():
            assert candidate.config.dumps() == \
                imp_result.best_per_bin[target].config.dumps()


class TestDescribeAndCheck:
    def test_describe_renders_the_tuning_surface(self):
        from repro.suite import get_benchmark
        program, _ = get_benchmark("poisson").compile()
        text = describe(program)
        assert "program poisson" in text
        assert "config-space digest" in text
        assert "choice site u: multigrid | full_multigrid | direct " \
               "| iterative" in text
        assert "tunable vcycles" in text
        assert "call coarse -> poisson (auto accuracy)" in text
        assert "accuracy bins: 1, 3, 5, 7, 9" in text
        assert "poisson@main" in text

    def test_describe_accepts_transform_and_name(self):
        lowered = make_dsl_pair()
        assert "pipelineish" in describe(lowered)
        assert "program binpacking" in describe("binpacking")

    def test_check_clean_benchmark_returns_empty(self):
        diagnostics = check("poisson")
        assert not diagnostics

    def test_check_broken_transform_returns_entries(self):
        bad = Transform("bad", inputs=("a",), outputs=("b", "c"))
        bad.rule(outputs=("b",), inputs=("a",))(lambda ctx, a: a)
        diagnostics = check(bad)
        assert diagnostics
        assert any("'c'" in e.message for e in diagnostics)

    def test_check_accepts_factory(self):
        from repro.suite import get_benchmark
        assert not check(get_benchmark("clustering").build)

    def test_main_checks_all_benchmarks(self):
        from repro.lang.check import main
        lines = []
        assert main(log=lines.append) == 0
        assert len(lines) == 6
        assert all(": ok (" in line for line in lines)

    def test_main_reports_failures(self, monkeypatch):
        from repro.lang.check import main
        from repro.suite.registry import BenchmarkSpec

        def broken_build():
            bad = Transform("bad", inputs=("a",), outputs=("b", "c"))
            bad.rule(outputs=("b",), inputs=("a",))(lambda ctx, a: a)
            return bad, ()

        spec = BenchmarkSpec(name="bad", build=broken_build,
                             generate=lambda n, rng: {},
                             training_sizes=(4.0,), cost_limit=None,
                             description="broken")
        monkeypatch.setattr("repro.suite.registry._load_specs",
                            lambda: {"bad": spec})
        lines = []
        assert main(log=lines.append) == 1
        assert any("FAILED" in line for line in lines)


class TestBackendSpecMessage:
    def test_unknown_spec_lists_valid_forms(self):
        with pytest.raises(ConfigError) as exc_info:
            backend_from_spec("quantum:3")
        message = str(exc_info.value)
        assert "'serial'" in message
        assert "'threads[:N]'" in message
        assert "'process[:N]'" in message
