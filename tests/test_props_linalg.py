"""Property-based tests (hypothesis) for the linear algebra substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.linalg.banded import banded_cholesky_factor, banded_cholesky_solve
from repro.linalg.bisection import (
    bisect_eigenvalues,
    solve_shifted_tridiagonal,
    sturm_count,
)
from repro.linalg.cg import conjugate_gradient
from repro.linalg.householder import tridiagonalize_symmetric
from repro.linalg.tridiag_qr import tridiagonal_eigen_qr


@st.composite
def tridiagonals(draw):
    n = draw(st.integers(min_value=1, max_value=14))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    return rng.normal(size=n), rng.normal(size=max(0, n - 1))


def dense_from(d, e):
    t = np.diag(d)
    if len(d) > 1:
        t += np.diag(e, 1) + np.diag(e, -1)
    return t


@settings(max_examples=40, deadline=None)
@given(data=tridiagonals())
def test_sturm_count_matches_numpy(data):
    d, e = data
    reference = np.linalg.eigvalsh(dense_from(d, e))
    for quantile in (0.1, 0.5, 0.9):
        x = float(np.quantile(reference, quantile)) + 1e-7
        assert sturm_count(d, e, x) == int(np.sum(reference < x))


@settings(max_examples=40, deadline=None)
@given(data=tridiagonals())
def test_sturm_count_monotone_in_x(data):
    d, e = data
    points = np.linspace(d.min() - 5, d.max() + 5, 7)
    counts = [sturm_count(d, e, x) for x in points]
    assert counts == sorted(counts)


@settings(max_examples=30, deadline=None)
@given(data=tridiagonals())
def test_qr_and_bisection_agree_on_extremes(data):
    d, e = data
    n = len(d)
    values_qr, _, _ = tridiagonal_eigen_qr(d, e)
    values_bisect, _ = bisect_eigenvalues(d, e, [0, n - 1])
    assert values_bisect[0] == pytest.approx(values_qr[0], abs=1e-8)
    assert values_bisect[1] == pytest.approx(values_qr[-1], abs=1e-8)


@settings(max_examples=30, deadline=None)
@given(data=tridiagonals(), shift=st.floats(min_value=-3, max_value=3,
                                            allow_nan=False),
       seed=st.integers(0, 999))
def test_shifted_tridiagonal_solve(data, shift, seed):
    d, e = data
    n = len(d)
    t = dense_from(d, e) - shift * np.eye(n)
    # Skip (near-)singular shifts: the safeguarded solve regularises
    # them by design, so the residual check does not apply.
    if abs(np.linalg.det(t)) < 1e-6:
        return
    rng = np.random.default_rng(seed)
    b = rng.normal(size=n)
    x = solve_shifted_tridiagonal(d, e, shift, b)
    assert np.allclose(t @ x, b, atol=1e-6 * max(1.0, np.abs(t).max()))


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=1, max_value=12),
       seed=st.integers(0, 999))
def test_householder_preserves_spectrum(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    a = a + a.T
    d, e, q, _ = tridiagonalize_symmetric(a)
    values, _, _ = tridiagonal_eigen_qr(d, e)
    assert np.allclose(values, np.linalg.eigvalsh(a), atol=1e-8)


@settings(max_examples=25, deadline=None)
@given(size=st.integers(min_value=2, max_value=20),
       bandwidth=st.integers(min_value=1, max_value=4),
       seed=st.integers(0, 999))
def test_banded_cholesky_solves_random_spd(size, bandwidth, seed):
    bandwidth = min(bandwidth, size - 1)
    rng = np.random.default_rng(seed)
    band = np.zeros((bandwidth + 1, size))
    band[0] = rng.uniform(2.0 * bandwidth + 1.0, 2.0 * bandwidth + 2.0,
                          size)  # diagonally dominant -> SPD
    for offset in range(1, bandwidth + 1):
        band[offset, :size - offset] = rng.uniform(-1, 1, size - offset)
    dense = np.zeros((size, size))
    for offset in range(bandwidth + 1):
        for j in range(size - offset):
            dense[j + offset, j] = band[offset, j]
            dense[j, j + offset] = band[offset, j]
    factor, _ = banded_cholesky_factor(band)
    b = rng.normal(size=size)
    x, _ = banded_cholesky_solve(factor, b)
    assert np.allclose(dense @ x, b, atol=1e-8)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=4, max_value=64),
       seed=st.integers(0, 999))
def test_cg_residual_never_ends_higher_than_start(n, seed):
    rng = np.random.default_rng(seed)
    diagonal = rng.uniform(1.0, 3.0, size=n)

    def apply_a(v):
        out = 2.0 * v
        out[:-1] -= v[1:] * 0.5
        out[1:] -= v[:-1] * 0.5
        return out * diagonal ** 0 + diagonal * v

    b = rng.normal(size=n)
    _, norms, _ = conjugate_gradient(apply_a, b, iterations=2 * n,
                                     operator_cost=5.0 * n,
                                     tolerance=1e-12)
    assert norms[-1] <= norms[0] * (1 + 1e-9)
