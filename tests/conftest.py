"""Shared fixtures: a tiny variable-accuracy transform used across tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler.compile import compile_program
from repro.lang.transform import Transform
from repro.lang.tunables import accuracy_variable, for_enough


def make_approxmean_transform() -> Transform:
    """A minimal variable-accuracy transform: approximate the mean.

    One accuracy variable (sample count ``m``), two algorithmic rules
    (subsampled mean vs exact mean).  Deterministic given the
    execution seed, cheap, and its accuracy is monotone in ``m`` —
    ideal for exercising the tuner.
    """

    def metric(outputs, inputs):
        estimate = float(outputs["est"])
        truth = float(np.mean(inputs["xs"]))
        return max(0.0, 1.0 - abs(estimate - truth) / (abs(truth) + 1e-9))

    transform = Transform(
        "approxmean",
        inputs=("xs",),
        outputs=("est",),
        accuracy_metric=metric,
        accuracy_bins=(0.5, 0.9, 0.99),
        tunables=[
            accuracy_variable("m", lo=1, hi=100000, default=4,
                              direction=+1),
            for_enough("reps", max_iters=8, default=1),
        ],
    )

    @transform.rule(outputs=("est",), inputs=("xs",), name="sample_mean")
    def sample_mean(ctx, xs):
        m = min(len(xs), int(ctx.param("m")))
        total = 0.0
        count = 0
        for _ in ctx.for_enough("reps"):
            indices = ctx.rng.integers(0, len(xs), size=m)
            ctx.add_cost(m)
            total += float(np.mean(xs[indices]))
            count += 1
        return total / count

    @transform.rule(outputs=("est",), inputs=("xs",), name="exact_mean")
    def exact_mean(ctx, xs):
        ctx.add_cost(2 * len(xs))
        return float(np.mean(xs))

    return transform


def approxmean_inputs(n: int, rng: np.random.Generator):
    return {"xs": rng.normal(10.0, 1.0, size=max(2, int(n)))}


@pytest.fixture
def approxmean():
    """(program, training_info) for the approxmean transform."""
    return compile_program(make_approxmean_transform())


@pytest.fixture
def approxmean_program(approxmean):
    return approxmean[0]


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
