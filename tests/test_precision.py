"""Mixed precision as a tunable dimension.

Covers the full dtype path: the ``precision()`` DSL tunable and its
batched diagnostics, :class:`PrecisionParam` inside the parameter
space (validation, digest, GA mutation), the executor's per-instance
cast with cost scaling and trace provenance, per-bin mixed-precision
resolution, artifact JSON round-trips, and backward compatibility with
configurations that predate the precision dimension.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.autotuner.candidate import Candidate
from repro.autotuner.mutators import MutatorPool
from repro.compiler.compile import compile_program
from repro.config.configuration import Configuration
from repro.config.parameters import (
    PRECISION_DTYPES,
    ParameterSpace,
    PrecisionParam,
    SwitchParam,
    precision_dtype,
)
from repro.errors import ConfigError, LanguageError
from repro.lang import precision, rule, transform
from repro.serving import TunedArtifact
from repro.suite import get_benchmark


@pytest.fixture(scope="module")
def poisson_program():
    program, _ = get_benchmark("poisson").compile()
    return program


def scaled_program():
    @transform(inputs=("x",), outputs=("y",))
    class scaleit:
        precision = precision()

        @rule
        def double(ctx, x):
            ctx.add_cost(100.0)
            return x * 2.0

    program, _ = compile_program(scaleit, ())
    return program


# ----------------------------------------------------------------------
# The config layer: PrecisionParam and the dtype registry
# ----------------------------------------------------------------------
class TestPrecisionParam:
    def test_registry_resolves_canonical_names(self):
        assert precision_dtype("float32") == np.dtype(np.float32)
        assert precision_dtype("float64") == np.dtype(np.float64)

    def test_unknown_name_lists_valid_choices(self):
        with pytest.raises(ConfigError, match="float32, float64"):
            precision_dtype("float16")

    def test_param_rejects_non_dtype_choices(self):
        with pytest.raises(ConfigError, match="valid choices"):
            PrecisionParam(name="p", choices=("float64", "double"),
                           default="float64")

    def test_param_resolves_entry_to_dtype(self):
        param = PrecisionParam(name="p", choices=("float64", "float32"),
                               default="float64")
        assert param.dtype("float32") == np.dtype(np.float32)

    def test_digest_distinguishes_precision_from_plain_switch(self):
        """Promoting a switch to a precision changes the space digest
        even with identical name/choices/default."""
        kwargs = dict(name="p", choices=("float64", "float32"),
                      default="float64", affects_accuracy=True)
        plain = ParameterSpace([SwitchParam(**kwargs)])
        precise = ParameterSpace([PrecisionParam(**kwargs)])
        assert plain.digest() != precise.digest()

    def test_adding_the_dimension_changes_the_program_digest(self):
        mixed, _ = compile_program(
            *get_benchmark("poisson").build())
        float64_only, _ = compile_program(
            *get_benchmark("poisson").build(
                precision_choices=("float64",)))
        assert mixed.space.digest() != float64_only.space.digest()


# ----------------------------------------------------------------------
# The DSL tunable
# ----------------------------------------------------------------------
class TestPrecisionDeclaration:
    def test_named_form_rejects_unknown_dtype(self):
        with pytest.raises(LanguageError, match="bfloat16"):
            precision("p", choices=("float64", "bfloat16"))

    def test_default_must_be_a_choice(self):
        with pytest.raises(LanguageError, match="not.*one of"):
            precision("p", choices=("float32",), default="float64")

    def test_unknown_dtype_reported_with_location(self):
        """The batched diagnostics pass carries the declaration's
        source location for an unknown dtype name."""
        with pytest.raises(LanguageError) as exc_info:
            @transform(inputs=("a",), outputs=("b",))
            class badprec:
                workdtype = precision(choices=("float64", "float16"))

                @rule
                def r(ctx, a):
                    return a

        diagnostics = exc_info.value.diagnostics
        entry = next(e for e in diagnostics if "float16" in e.message)
        assert "workdtype" in entry.message
        assert "valid choices: float32, float64" in entry.message
        assert entry.location is not None
        assert entry.location.filename.endswith("test_precision.py")

    def test_second_precision_rejected(self):
        with pytest.raises(LanguageError, match="one working precision"):
            @transform(inputs=("a",), outputs=("b",))
            class twoprec:
                p1 = precision()
                p2 = precision()

                @rule
                def r(ctx, a):
                    return a

    def test_transform_tracks_its_precision_param(self, poisson_program):
        param = poisson_program.root_transform.precision_param
        assert isinstance(param, PrecisionParam)
        assert param.name == "precision"
        assert set(param.choices) <= set(PRECISION_DTYPES)

    def test_space_namespaces_precision_per_bin(self, poisson_program):
        """Every (transform, bin) instance owns an entry, so the tuner
        can mix dtypes across recursion levels."""
        names = set(poisson_program.space.names())
        assert "poisson@main.precision" in names
        for target in poisson_program.root_transform.accuracy_bins:
            assert f"poisson@{target:g}.precision" in names


# ----------------------------------------------------------------------
# The executor: cast, cost scaling, provenance
# ----------------------------------------------------------------------
class TestExecutorCast:
    def test_float64_config_leaves_inputs_alone(self):
        program = scaled_program()
        x = np.ones(8)
        result = program.execute({"x": x}, 8.0, program.default_config())
        assert result.outputs["y"].dtype == np.float64
        assert result.metrics.cost == 100.0

    def test_float32_config_casts_scales_cost_and_records(self):
        program = scaled_program()
        config = program.default_config().with_entry(
            "scaleit@main.precision", "float32")
        x = np.ones(8)
        result = program.execute({"x": x}, 8.0, config,
                                 collect_trace=True)
        assert result.outputs["y"].dtype == np.float32
        # float32 ops are charged exactly half a float64 op: the
        # scale is a power of two, so integer op counts stay exact.
        assert result.metrics.cost == 50.0
        events = result.trace.of_kind("precision")
        assert len(events) == 1
        assert events[0]["instance"] == "scaleit@main"
        assert events[0]["dtype"] == "float32"
        assert events[0]["cast"] == ("x",)

    def test_float32_input_is_not_recast(self):
        program = scaled_program()
        config = program.default_config().with_entry(
            "scaleit@main.precision", "float32")
        x = np.ones(8, dtype=np.float32)
        result = program.execute({"x": x}, 8.0, config,
                                 collect_trace=True)
        assert result.outputs["y"].dtype == np.float32
        assert result.trace.of_kind("precision")[0]["cast"] == ()

    def test_per_bin_mixed_precision_resolves_per_instance(
            self, poisson_program):
        """float32 coarse levels under a float64 root: each sub-call
        re-resolves its own namespaced entry."""
        config = poisson_program.default_config()
        updates = {key: "float32" for key, _ in config.items()
                   if key.endswith(".precision")
                   and key != "poisson@main.precision"}
        config = config.with_entries(updates)
        inputs = get_benchmark("poisson").generate(
            15, np.random.default_rng(0))
        result = poisson_program.execute(inputs, 15.0, config,
                                         collect_trace=True)
        events = result.trace.of_kind("precision")
        root = [e for e in events if e["instance"] == "poisson@main"]
        coarse = [e for e in events if e["instance"] != "poisson@main"]
        assert root and all(e["dtype"] == "float64" for e in root)
        assert coarse and all(e["dtype"] == "float32" for e in coarse)
        # The root instance runs in float64, so the served output does.
        assert result.outputs["u"].dtype == np.float64

    def test_config_without_precision_entries_still_runs(
            self, poisson_program):
        """Configurations predating the precision dimension (stored
        artifacts) mean "leave dtypes alone"."""
        default = poisson_program.default_config()
        entries = {key: value for key, value in default.items()
                   if not key.endswith(".precision")}
        legacy = Configuration(entries)
        assert poisson_program.configured_dtype(legacy, 15.0) is None
        inputs = get_benchmark("poisson").generate(
            15, np.random.default_rng(0))
        result = poisson_program.execute(inputs, 15.0, legacy)
        assert result.outputs["u"].dtype == np.float64


# ----------------------------------------------------------------------
# The tuner: GA mutation over the precision dimension
# ----------------------------------------------------------------------
class TestPrecisionMutation:
    def test_pool_generates_a_precision_mutator(self, poisson_program):
        pool = MutatorPool.from_space(poisson_program.space)
        names = {m.name for m in pool.mutators}
        assert "switch:poisson@main.precision" in names

    def test_mutation_flips_the_dtype(self, poisson_program):
        pool = MutatorPool.from_space(poisson_program.space)
        mutator = next(m for m in pool.mutators
                       if m.name == "switch:poisson@main.precision")
        candidate = Candidate(poisson_program.default_config())
        config, record = mutator.mutate(
            candidate, 15.0, np.random.default_rng(0))
        assert config["poisson@main.precision"] == "float32"
        assert record.changes == (("poisson@main.precision", "float64"),)

    def test_single_choice_space_gets_no_precision_mutator(self):
        program, _ = compile_program(
            *get_benchmark("poisson").build(
                precision_choices=("float64",)))
        pool = MutatorPool.from_space(program.space)
        assert not any("precision" in m.name for m in pool.mutators)


# ----------------------------------------------------------------------
# Artifacts: the precision entry survives JSON round-trips
# ----------------------------------------------------------------------
class TestArtifactRoundTrip:
    def test_precision_entry_round_trips_through_json(
            self, poisson_program):
        from repro.runtime.executor import TunedProgram
        config = poisson_program.default_config().with_entry(
            "poisson@main.precision", "float32")
        bins = poisson_program.root_transform.accuracy_bins
        tuned = TunedProgram(poisson_program,
                             {target: config for target in bins})
        artifact = TunedArtifact.from_tuned(tuned)
        payload = json.loads(json.dumps(artifact.to_json()))
        restored = TunedArtifact.from_json(payload)
        for target in bins:
            entry = restored.bin(target).config
            assert entry["poisson@main.precision"] == "float32"
            assert poisson_program.configured_dtype(entry, 15.0) == \
                np.dtype(np.float32)
        # And the restored artifact still attaches and validates.
        reattached = restored.to_tuned(poisson_program)
        assert reattached.bin_configs.keys() == tuned.bin_configs.keys()

    def test_validate_rejects_foreign_dtype_values(self, poisson_program):
        config = poisson_program.default_config().with_entry(
            "poisson@main.precision", "float16")
        with pytest.raises(ConfigError, match="float16"):
            poisson_program.space.validate(config)
