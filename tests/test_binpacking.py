"""Tests for the bin packing substrate."""

import math

import numpy as np
import pytest

from repro.binpacking.algorithms import (
    ALGORITHMS,
    Packing,
    almost_worst_fit,
    best_fit,
    first_fit,
    first_fit_decreasing,
    last_fit,
    modified_first_fit_decreasing,
    next_fit,
    validate_packing,
    worst_fit,
)
from repro.binpacking.datagen import generate_items_with_known_optimal
from repro.binpacking.metrics import bins_over_optimal


def bin_fills(items, packing: Packing) -> np.ndarray:
    fills = np.zeros(packing.num_bins)
    np.add.at(fills, packing.assignment, items)
    return fills


class TestIndividualAlgorithms:
    def test_first_fit_reuses_bins(self):
        items = [0.5, 0.5, 0.5, 0.5]
        packing = first_fit(items)
        assert packing.num_bins == 2
        assert validate_packing(np.array(items), packing)

    def test_first_fit_order_dependence(self):
        # Classic FF pathology: alternating sizes waste space.
        items = [0.6, 0.5, 0.6, 0.5]
        packing = first_fit(items)
        assert packing.num_bins == 3

    def test_first_fit_decreasing_fixes_it(self):
        items = [0.6, 0.5, 0.6, 0.5]
        # Sorted: .6 .6 .5 .5 -> still 3 bins (0.6+0.5 > 1)... use a
        # case where sorting genuinely helps:
        items = [0.3, 0.7, 0.3, 0.7]
        assert first_fit(items).num_bins == 2
        assert first_fit_decreasing(items).num_bins == 2

    def test_next_fit_never_looks_back(self):
        items = [0.6, 0.5, 0.4]
        packing = next_fit(items)
        # 0.6 opens bin 1; 0.5 doesn't fit -> bin 2; 0.4 fits bin 2.
        assert packing.num_bins == 2
        assert list(packing.assignment) == [0, 1, 1]

    def test_best_fit_picks_fullest(self):
        # Bins after two items: [0.5], [0.7]; 0.3 fits both, BestFit
        # chooses the fuller one (0.7).
        items = [0.5, 0.7, 0.3]
        packing = best_fit(items)
        assert packing.assignment[2] == 1

    def test_worst_fit_picks_emptiest(self):
        items = [0.5, 0.7, 0.3]
        packing = worst_fit(items)
        assert packing.assignment[2] == 0

    def test_last_fit_picks_last_fitting(self):
        items = [0.5, 0.5, 0.5, 0.3]
        packing = last_fit(items)
        # Bins: [0.5, 0.5] then [0.5]; 0.3 goes into the last bin.
        assert packing.assignment[3] == packing.num_bins - 1

    def test_almost_worst_fit_kth(self):
        # Three bins with remaining capacities 0.1, 0.05, 0.02; the
        # final 0.01 item fits all of them.
        items = [0.9, 0.95, 0.98, 0.01]
        least_full = almost_worst_fit(items, kth=1)
        assert least_full.assignment[3] == 0
        second_least_full = almost_worst_fit(items, kth=2)
        assert second_least_full.assignment[3] == 1
        third = almost_worst_fit(items, kth=3)
        assert third.assignment[3] == 2

    def test_almost_worst_fit_kth_clamped(self):
        items = [0.5, 0.05]
        packing = almost_worst_fit(items, kth=10)
        assert packing.num_bins == 1

    def test_almost_worst_fit_invalid_k(self):
        with pytest.raises(ValueError):
            almost_worst_fit([0.5], kth=0)

    def test_mffd_valid_and_reasonable(self):
        rng = np.random.default_rng(0)
        items, optimal = generate_items_with_known_optimal(200, rng)
        packing = modified_first_fit_decreasing(items)
        assert validate_packing(items, packing)
        # 71/60 guarantee (plus a small additive constant).
        assert packing.num_bins <= math.ceil(optimal * 71 / 60) + 1

    def test_decreasing_maps_assignment_back_to_input_order(self):
        items = np.array([0.2, 0.9, 0.3])
        packing = first_fit_decreasing(items)
        assert validate_packing(items, packing)
        assert packing.assignment.shape == items.shape


class TestAllAlgorithms:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_valid_on_random_items(self, name):
        rng = np.random.default_rng(7)
        items = rng.uniform(0.01, 1.0, size=100)
        packing = ALGORITHMS[name](items)
        assert validate_packing(items, packing)
        assert packing.ops > 0

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_volume_lower_bound(self, name):
        rng = np.random.default_rng(8)
        items = rng.uniform(0.01, 1.0, size=64)
        packing = ALGORITHMS[name](items)
        assert packing.num_bins >= math.ceil(items.sum() - 1e-9)

    def test_next_fit_worst_case_bound(self):
        rng = np.random.default_rng(9)
        items, optimal = generate_items_with_known_optimal(300, rng)
        packing = next_fit(items)
        assert packing.num_bins <= 2 * optimal

    def test_next_fit_is_cheapest(self):
        rng = np.random.default_rng(10)
        items = rng.uniform(0.01, 1.0, size=200)
        costs = {name: ALGORITHMS[name](items).ops
                 for name in ALGORITHMS}
        assert min(costs, key=costs.get) == "NextFit"

    def test_ops_scale_superlinearly_for_fit_family(self):
        rng = np.random.default_rng(11)
        small = rng.uniform(0.01, 1.0, size=100)
        large = rng.uniform(0.01, 1.0, size=400)
        ratio_bf = best_fit(large).ops / best_fit(small).ops
        ratio_nf = next_fit(large).ops / next_fit(small).ops
        assert ratio_bf > 8      # ~quadratic
        assert ratio_nf == pytest.approx(4, rel=0.01)  # linear


class TestDatagen:
    def test_exact_item_count(self):
        rng = np.random.default_rng(0)
        for n in (1, 2, 5, 17, 100):
            items, optimal = generate_items_with_known_optimal(n, rng)
            assert len(items) == n
            assert 1 <= optimal <= n

    def test_total_volume_equals_bins(self):
        rng = np.random.default_rng(1)
        items, optimal = generate_items_with_known_optimal(500, rng)
        assert items.sum() == pytest.approx(optimal)

    def test_optimum_is_achievable(self):
        rng = np.random.default_rng(2)
        items, optimal = generate_items_with_known_optimal(
            60, rng, shuffle=False)
        # Unshuffled items come grouped per bin; NextFit recovers the
        # optimal packing exactly.
        packing = next_fit(items)
        assert packing.num_bins == optimal

    def test_validation(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            generate_items_with_known_optimal(0, rng)
        with pytest.raises(ValueError):
            generate_items_with_known_optimal(5, rng,
                                              two_piece_probability=2.0)
        with pytest.raises(ValueError):
            generate_items_with_known_optimal(5, rng, max_pieces=1)

    def test_ffd_near_optimal_on_this_distribution(self):
        """The property Figure 7's top accuracy band relies on."""
        rng = np.random.default_rng(4)
        ratios = []
        for trial in range(5):
            items, optimal = generate_items_with_known_optimal(1024, rng)
            packing = first_fit_decreasing(items)
            ratios.append(packing.num_bins / optimal)
        assert np.mean(ratios) < 1.01


class TestMetric:
    def test_ratio(self):
        assert bins_over_optimal(11, 10) == pytest.approx(1.1)

    def test_invalid_optimal(self):
        with pytest.raises(ValueError):
            bins_over_optimal(5, 0)

    def test_below_optimal_rejected(self):
        with pytest.raises(ValueError):
            bins_over_optimal(5, 10)
