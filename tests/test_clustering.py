"""Tests for the k-means substrate."""

import numpy as np
import pytest

from repro.clustering.datagen import generate_clustered_points
from repro.clustering.kernels import (
    assign_clusters,
    lloyd_iterations,
    new_cluster_locations,
    sum_cluster_distance_squared,
)
from repro.clustering.metrics import PERFECT_ACCURACY, kmeans_accuracy
from repro.clustering.seeding import kmeans_plus_plus, random_centers


def tiny_points():
    return np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [5.1, 5.0]])


class TestAssignClusters:
    def test_nearest_assignment(self):
        centroids = np.array([[0.0, 0.0], [5.0, 5.0]])
        assignments, ops = assign_clusters(tiny_points(), centroids)
        assert list(assignments) == [0, 0, 1, 1]
        assert ops == 4 * 2

    def test_matches_bruteforce(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(40, 2))
        centroids = rng.normal(size=(5, 2))
        assignments, _ = assign_clusters(points, centroids)
        for i, point in enumerate(points):
            distances = [np.linalg.norm(point - c) for c in centroids]
            assert assignments[i] == int(np.argmin(distances))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            assign_clusters(np.zeros(3), np.zeros((2, 2)))


class TestNewClusterLocations:
    def test_means(self):
        assignments = np.array([0, 0, 1, 1])
        centroids, ops = new_cluster_locations(tiny_points(), assignments,
                                               2)
        assert np.allclose(centroids[0], [0.05, 0.0])
        assert np.allclose(centroids[1], [5.05, 5.0])
        assert ops == 4

    def test_empty_cluster_placeholder(self):
        assignments = np.array([0, 0, 0, 0])
        centroids, _ = new_cluster_locations(tiny_points(), assignments, 3)
        assert np.isfinite(centroids).all()
        global_mean = tiny_points().mean(axis=0)
        assert np.allclose(centroids[1], global_mean)
        assert np.allclose(centroids[2], global_mean)


class TestLloydIterations:
    def test_fixed_point_on_separated_clusters(self):
        points = tiny_points()
        start = np.array([[0.2, 0.1], [4.5, 4.9]])
        assignments, centroids, iterations = lloyd_iterations(
            points, start, max_iterations=50, change_fraction=0.0)
        assert list(assignments) == [0, 0, 1, 1]
        assert iterations < 50

    def test_once_mode(self):
        points = tiny_points()
        start = np.array([[0.2, 0.1], [4.5, 4.9]])
        _, _, iterations = lloyd_iterations(points, start,
                                            max_iterations=1)
        assert iterations == 1

    def test_threshold_stops_earlier_than_fixpoint(self):
        rng = np.random.default_rng(1)
        points, _ = generate_clustered_points(400, rng)
        start, _ = random_centers(points, 10, np.random.default_rng(2))
        _, _, relaxed = lloyd_iterations(points, start,
                                         max_iterations=100,
                                         change_fraction=0.5)
        _, _, strict = lloyd_iterations(points, start,
                                        max_iterations=100,
                                        change_fraction=0.0)
        assert relaxed <= strict

    def test_cost_callback(self):
        costs = []
        points = tiny_points()
        start = np.array([[0.0, 0.0], [5.0, 5.0]])
        lloyd_iterations(points, start, max_iterations=3,
                         on_cost=costs.append)
        assert sum(costs) > 0

    def test_invalid_iteration_count(self):
        with pytest.raises(ValueError):
            lloyd_iterations(tiny_points(), tiny_points()[:1],
                             max_iterations=0)


class TestSeeding:
    def test_random_centers_are_input_points(self):
        rng = np.random.default_rng(0)
        points = tiny_points()
        centers, ops = random_centers(points, 3, rng)
        assert centers.shape == (3, 2)
        assert ops == 3
        for center in centers:
            assert any(np.allclose(center, p) for p in points)

    def test_kmeans_plus_plus_centers_are_input_points(self):
        rng = np.random.default_rng(0)
        points = tiny_points()
        centers, ops = kmeans_plus_plus(points, 2, rng)
        assert centers.shape == (2, 2)
        assert ops == 4 * 2
        for center in centers:
            assert any(np.allclose(center, p) for p in points)

    def test_kmeans_plus_plus_spreads_centers(self):
        """++ seeding yields lower distortion than random on average."""
        rng = np.random.default_rng(3)
        points, _ = generate_clustered_points(600, rng)
        k = 24

        def distortion(seeder, seed):
            centers, _ = seeder(points, k, np.random.default_rng(seed))
            assignments, _ = assign_clusters(points, centers)
            return sum_cluster_distance_squared(points, assignments,
                                                centers)

        random_mean = np.mean([distortion(random_centers, s)
                               for s in range(10)])
        pp_mean = np.mean([distortion(kmeans_plus_plus, s)
                           for s in range(10)])
        assert pp_mean < random_mean

    def test_degenerate_identical_points(self):
        points = np.zeros((5, 2))
        centers, _ = kmeans_plus_plus(points, 3, np.random.default_rng(0))
        assert centers.shape == (3, 2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            random_centers(tiny_points(), 0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            kmeans_plus_plus(tiny_points(), 0, np.random.default_rng(0))


class TestMetric:
    def test_perfect_clustering_capped(self):
        points = tiny_points()
        assignments = np.array([0, 0, 1, 1])
        centroids = np.array([[0.05, 0.0], [5.05, 5.0]])
        # Not exactly zero distance, but tiny -> large accuracy.
        accuracy = kmeans_accuracy(points, assignments, centroids)
        assert accuracy > 1.0

    def test_zero_distance_returns_cap(self):
        points = np.array([[1.0, 1.0], [2.0, 2.0]])
        assignments = np.array([0, 1])
        centroids = points.copy()
        assert kmeans_accuracy(points, assignments, centroids) == \
            PERFECT_ACCURACY

    def test_recomputes_centroids_from_assignments(self):
        points = tiny_points()
        assignments = np.array([0, 0, 1, 1])
        from_assignments = kmeans_accuracy(points, assignments)
        explicit = kmeans_accuracy(points, assignments,
                                   np.array([[0.05, 0.0], [5.05, 5.0]]))
        assert from_assignments == pytest.approx(explicit)

    def test_more_clusters_higher_accuracy(self):
        rng = np.random.default_rng(5)
        points, _ = generate_clustered_points(500, rng)
        few, _ = assign_clusters(points, points[:3])
        many, _ = assign_clusters(points, points[:60])
        assert kmeans_accuracy(points, many) > kmeans_accuracy(points, few)


class TestDatagen:
    def test_shapes_and_true_k(self):
        rng = np.random.default_rng(0)
        points, true_k = generate_clustered_points(2048, rng)
        assert points.shape == (2048, 2)
        assert true_k == 45  # round(sqrt(2048))

    def test_centers_in_box(self):
        rng = np.random.default_rng(1)
        points, true_k = generate_clustered_points(100, rng, box=250.0)
        assert np.all(np.abs(points[:true_k]) <= 250.0)

    def test_points_cluster_around_centers(self):
        rng = np.random.default_rng(2)
        points, true_k = generate_clustered_points(400, rng,
                                                   noise_std=1.0)
        centers = points[:true_k]
        assignments, _ = assign_clusters(points, centers)
        distances = np.linalg.norm(points - centers[assignments], axis=1)
        assert np.percentile(distances, 95) < 5.0

    def test_tiny_n(self):
        rng = np.random.default_rng(3)
        points, true_k = generate_clustered_points(1, rng)
        assert points.shape == (1, 2)
        assert true_k == 1

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            generate_clustered_points(0, np.random.default_rng(0))
