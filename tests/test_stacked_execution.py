"""Stacked execution: fused waves are indistinguishable from loops.

Covers the runtime batching layer (:mod:`repro.runtime.batching`), the
ServingEngine's wave fusion, and the tuning harness's population
stacking — in every case the observable results must match the
pre-batching per-request path, with only the counters revealing that
fewer program executions happened.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autotuner import ProgramTestHarness
from repro.autotuner.candidate import Candidate
from repro.runtime.backends import SerialBackend, TrialRequest
from repro.runtime.batching import (
    execute_stacked,
    is_batchable,
    run_batch_stacked,
    stack_signature,
)
from repro.runtime.executor import TunedProgram
from repro.serving import ServeRequest, ServingEngine
from repro.suite import get_benchmark


@pytest.fixture(scope="module")
def poisson_program():
    program, _ = get_benchmark("poisson").compile()
    return program


def pin_precision(config, value: str = "float64"):
    """Pin every per-instance ``precision`` entry of ``config``.

    The bit-identity assertions in this module hold exactly for float64
    configurations; float32 runs agree with the per-request path only
    to working precision (the fused einsum substitution rounds
    differently than the scalar loops), so the float32 side is covered
    separately with dtype-aware tolerances in TestPrecisionStacking.
    """
    updates = {key: value for key, _ in config.items()
               if key.endswith(".precision")}
    return config.with_entries(updates)


def poisson_tuned(program) -> TunedProgram:
    configs = {}
    for index, target in enumerate(program.root_transform.accuracy_bins):
        rng = np.random.default_rng(100 + index)
        configs[target] = pin_precision(program.random_config(rng))
    return TunedProgram(program, configs)


def poisson_inputs(n: int, seed: int):
    return get_benchmark("poisson").generate(n, np.random.default_rng(seed))


def make_request(program, n: int, seed: int,
                 config=None) -> TrialRequest:
    from repro.runtime.backends import config_digest
    config = config if config is not None else program.default_config()
    return TrialRequest(
        digest=config_digest(config), n=float(n), trial_index=seed,
        seed=seed, config=config, inputs=poisson_inputs(n, seed))


# ----------------------------------------------------------------------
# The batching primitives
# ----------------------------------------------------------------------
class TestBatchingPrimitives:
    def test_poisson_is_batchable(self, poisson_program):
        assert is_batchable(poisson_program)

    def test_signature_groups_by_config_and_shape(self, poisson_program):
        a = make_request(poisson_program, 15, 0)
        b = make_request(poisson_program, 15, 1)
        c = make_request(poisson_program, 7, 2)
        assert stack_signature(a) == stack_signature(b)
        assert stack_signature(a) != stack_signature(c)

    def test_unfusable_inputs_signature_is_none(self, poisson_program):
        request = make_request(poisson_program, 7, 0)
        weird = TrialRequest(
            digest=request.digest, n=request.n, trial_index=0, seed=0,
            config=request.config,
            inputs={**dict(request.inputs), "note": object()})
        assert stack_signature(weird) is None

    def test_execute_stacked_matches_scalar(self, poisson_program):
        requests = [make_request(poisson_program, 15, seed)
                    for seed in range(6)]
        fused = execute_stacked(poisson_program, requests,
                                cost_limit=5e8, collect_outputs=True)
        backend = SerialBackend()
        scalar = backend.run_batch(poisson_program, requests,
                                   objective="cost", cost_limit=5e8,
                                   collect_outputs=True)
        assert fused is not None
        for fused_outcome, scalar_outcome in zip(fused, scalar):
            assert not fused_outcome.failed
            # Integer-valued cost terms make the /B recovery exact.
            assert fused_outcome.objective == scalar_outcome.objective
            assert fused_outcome.accuracy == \
                pytest.approx(scalar_outcome.accuracy, rel=1e-12)
            np.testing.assert_allclose(
                fused_outcome.outputs["u"], scalar_outcome.outputs["u"],
                rtol=1e-12, atol=1e-12)

    def test_run_batch_stacked_alignment_with_mixed_shapes(
            self, poisson_program):
        # Interleave two shapes; outcomes must land positionally.
        requests = [make_request(poisson_program, 15 if i % 2 else 7, i)
                    for i in range(8)]
        dispatched: list[int] = []
        backend = SerialBackend()

        def dispatch(reqs):
            dispatched.extend(r.trial_index for r in reqs)
            return backend.run_batch(poisson_program, reqs,
                                     objective="cost", cost_limit=5e8)

        counters: dict[str, int] = {}
        outcomes = run_batch_stacked(
            poisson_program, requests, dispatch=dispatch,
            cost_limit=5e8, counters=counters)
        assert len(outcomes) == 8 and not dispatched
        assert counters == {"stacked_calls": 2, "stacked_requests": 8}
        scalar = backend.run_batch(poisson_program, requests,
                                   objective="cost", cost_limit=5e8)
        for fused_outcome, scalar_outcome in zip(outcomes, scalar):
            assert fused_outcome.objective == scalar_outcome.objective

    def test_small_groups_fall_through_to_dispatch(self, poisson_program):
        requests = [make_request(poisson_program, 7, 0),
                    make_request(poisson_program, 15, 1)]
        seen: list[int] = []
        backend = SerialBackend()

        def dispatch(reqs):
            seen.extend(r.trial_index for r in reqs)
            return backend.run_batch(poisson_program, reqs,
                                     objective="cost")

        counters: dict[str, int] = {}
        run_batch_stacked(poisson_program, requests, dispatch=dispatch,
                          counters=counters)
        assert seen == [0, 1]
        assert counters == {}

    def test_wall_clock_objective_never_stacks(self, poisson_program):
        requests = [make_request(poisson_program, 7, seed)
                    for seed in range(4)]
        seen: list[int] = []
        backend = SerialBackend()

        def dispatch(reqs):
            seen.extend(r.trial_index for r in reqs)
            return backend.run_batch(poisson_program, reqs,
                                     objective="time")

        run_batch_stacked(poisson_program, requests, dispatch=dispatch,
                          objective="time")
        assert seen == [0, 1, 2, 3]

    def test_non_batchable_program_never_stacks(self):
        program, _ = get_benchmark("clustering").compile()
        assert not is_batchable(program)


# ----------------------------------------------------------------------
# ServingEngine wave fusion
# ----------------------------------------------------------------------
class TestEngineStacking:
    def serve_wave(self, poisson_program, *, stacking: bool,
                   count: int = 104, verify: bool = False):
        engine = ServingEngine(stacking=stacking)
        engine.register("poisson", poisson_tuned(poisson_program))
        requests = [
            ServeRequest(program="poisson",
                         inputs=poisson_inputs(15, seed), n=15.0,
                         accuracy=3.0, verify=verify, seed=seed)
            for seed in range(count)]
        return engine.serve(requests), engine.stats()

    def test_104_request_wave_matches_prebatching_path(
            self, poisson_program):
        stacked, stacked_stats = self.serve_wave(poisson_program,
                                                 stacking=True)
        looped, looped_stats = self.serve_wave(poisson_program,
                                               stacking=False)
        assert stacked_stats.stacked_calls >= 1
        assert stacked_stats.stacked_requests == 104
        assert looped_stats.stacked_calls == 0
        for fused, scalar in zip(stacked, looped):
            assert fused.ok and scalar.ok
            assert fused.bin_target == scalar.bin_target
            assert fused.fallback == scalar.fallback
            assert fused.escalations == scalar.escalations
            assert fused.achieved_accuracy == \
                pytest.approx(scalar.achieved_accuracy, rel=1e-12)
            np.testing.assert_allclose(fused.outputs["u"],
                                       scalar.outputs["u"],
                                       rtol=1e-12, atol=1e-12)

    def test_escalation_accounting_survives_stacking(
            self, poisson_program):
        stacked, stacked_stats = self.serve_wave(
            poisson_program, stacking=True, count=24, verify=True)
        looped, looped_stats = self.serve_wave(
            poisson_program, stacking=False, count=24, verify=True)
        assert stacked_stats.escalations == looped_stats.escalations
        assert stacked_stats.fallbacks == looped_stats.fallbacks
        assert stacked_stats.errors == looped_stats.errors
        for fused, scalar in zip(stacked, looped):
            assert fused.ok == scalar.ok
            assert fused.bin_target == scalar.bin_target
            assert fused.escalations == scalar.escalations

    def test_mixed_sizes_unstack_correctly(self, poisson_program):
        engine = ServingEngine(stacking=True)
        engine.register("poisson", poisson_tuned(poisson_program))
        sizes = [7, 15, 7, 15, 7, 15, 7, 7]
        requests = [
            ServeRequest(program="poisson",
                         inputs=poisson_inputs(n, seed), n=float(n),
                         accuracy=3.0, seed=seed)
            for seed, n in enumerate(sizes)]
        responses = engine.serve(requests)
        for response, n in zip(responses, sizes):
            assert response.ok
            assert response.outputs["u"].shape == (n, n)


# ----------------------------------------------------------------------
# Harness population stacking
# ----------------------------------------------------------------------
class TestHarnessStacking:
    def run_population(self, poisson_program, *, stacking: bool,
                       precision: str = "float64"):
        generate = get_benchmark("poisson").generate
        harness = ProgramTestHarness(
            poisson_program, generate, base_seed=11, cost_limit=5e8,
            stacking=stacking)
        rng = np.random.default_rng(5)
        candidates = [
            Candidate(pin_precision(poisson_program.random_config(rng),
                                    precision))
            for _ in range(3)]
        harness.ensure_trials_batch(
            [(candidate, 15.0, 4) for candidate in candidates])
        return harness, candidates

    def test_population_trials_match_unstacked(self, poisson_program):
        stacked_harness, stacked_pop = self.run_population(
            poisson_program, stacking=True)
        looped_harness, looped_pop = self.run_population(
            poisson_program, stacking=False)
        assert stacked_harness.stacked_calls >= 1
        assert stacked_harness.stacked_requests >= 2
        assert looped_harness.stacked_calls == 0
        assert stacked_harness.trials_executed == \
            looped_harness.trials_executed
        for fused, scalar in zip(stacked_pop, looped_pop):
            fused_trials = fused.results.trials(15.0)
            scalar_trials = scalar.results.trials(15.0)
            assert len(fused_trials) == len(scalar_trials) == 4
            for a, b in zip(fused_trials, scalar_trials):
                assert a.objective == b.objective
                assert a.failed == b.failed
                if min(a.accuracy, b.accuracy) >= 14.0:
                    # Residual at machine precision: the log10 metric
                    # amplifies ulp-level differences between the
                    # batched einsum solve and the scalar loop; both
                    # values mean "exact to float64".
                    continue
                assert a.accuracy == pytest.approx(b.accuracy, rel=1e-9)

    def test_float32_population_objectives_match_exactly(
            self, poisson_program):
        stacked_harness, stacked_pop = self.run_population(
            poisson_program, stacking=True, precision="float32")
        looped_harness, looped_pop = self.run_population(
            poisson_program, stacking=False, precision="float32")
        assert stacked_harness.stacked_calls >= 1
        assert looped_harness.stacked_calls == 0
        for fused, scalar in zip(stacked_pop, looped_pop):
            fused_trials = fused.results.trials(15.0)
            scalar_trials = scalar.results.trials(15.0)
            assert len(fused_trials) == len(scalar_trials) == 4
            for a, b in zip(fused_trials, scalar_trials):
                # cost_scale is an exact power of two and cost terms
                # are integer-valued, so the float32 discount and the
                # stacked /B recovery are both exact — objectives match
                # bit-for-bit even though the arithmetic does not.
                assert a.objective == b.objective
                assert a.failed == b.failed
                if min(a.accuracy, b.accuracy) >= 5.0:
                    # Near float32's ~7-order residual floor the log10
                    # metric amplifies single-ulp differences between
                    # the batched and scalar float32 kernels.
                    continue
                assert a.accuracy == pytest.approx(b.accuracy, abs=0.05)


# ----------------------------------------------------------------------
# Precision-aware stacking
# ----------------------------------------------------------------------
class TestPrecisionStacking:
    def test_mixed_precision_wave_groups_into_separate_stacks(
            self, poisson_program):
        f64 = poisson_program.default_config()
        f32 = pin_precision(f64, "float32")
        requests = [
            make_request(poisson_program, 15, seed,
                         config=f32 if seed % 2 else f64)
            for seed in range(8)]
        signatures = {stack_signature(request, poisson_program)
                      for request in requests}
        assert len(signatures) == 2 and None not in signatures
        backend = SerialBackend()
        counters: dict[str, int] = {}
        outcomes = run_batch_stacked(
            poisson_program, requests,
            dispatch=lambda reqs: backend.run_batch(
                poisson_program, reqs, objective="cost", cost_limit=5e8,
                collect_outputs=True),
            cost_limit=5e8, collect_outputs=True, counters=counters)
        assert counters == {"stacked_calls": 2, "stacked_requests": 8}
        for outcome, request in zip(outcomes, requests):
            assert not outcome.failed
            expected = np.float32 if request.config is f32 else np.float64
            assert outcome.outputs["u"].dtype == expected

    def test_float32_wave_fuses_into_float32_stack(self, poisson_program):
        config = pin_precision(poisson_program.default_config(), "float32")
        requests = [make_request(poisson_program, 15, seed, config=config)
                    for seed in range(4)]
        signatures = {stack_signature(request, poisson_program)
                      for request in requests}
        assert len(signatures) == 1
        fused = execute_stacked(poisson_program, requests,
                                cost_limit=5e8, collect_outputs=True)
        assert fused is not None
        scalar = SerialBackend().run_batch(
            poisson_program, requests, objective="cost", cost_limit=5e8,
            collect_outputs=True)
        for fused_outcome, scalar_outcome in zip(fused, scalar):
            assert not fused_outcome.failed
            assert fused_outcome.outputs["u"].dtype == np.float32
            assert scalar_outcome.outputs["u"].dtype == np.float32
            # The float32 cost discount and the /B recovery are exact.
            assert fused_outcome.objective == scalar_outcome.objective
            np.testing.assert_allclose(
                fused_outcome.outputs["u"], scalar_outcome.outputs["u"],
                rtol=5e-5, atol=5e-6)

    def test_dtype_preserved_through_per_request_fallback(
            self, poisson_program):
        # One request per precision: both groups fall below
        # min_group_size, so everything runs through the per-request
        # dispatch — which must still honour the configured dtype.
        f64 = poisson_program.default_config()
        f32 = pin_precision(f64, "float32")
        requests = [make_request(poisson_program, 15, 0, config=f64),
                    make_request(poisson_program, 15, 1, config=f32)]
        backend = SerialBackend()
        dispatched: list[int] = []

        def dispatch(reqs):
            dispatched.extend(r.trial_index for r in reqs)
            return backend.run_batch(poisson_program, reqs,
                                     objective="cost", cost_limit=5e8,
                                     collect_outputs=True)

        counters: dict[str, int] = {}
        outcomes = run_batch_stacked(
            poisson_program, requests, dispatch=dispatch,
            cost_limit=5e8, collect_outputs=True, counters=counters)
        assert dispatched == [0, 1]
        assert counters == {}
        assert outcomes[0].outputs["u"].dtype == np.float64
        assert outcomes[1].outputs["u"].dtype == np.float32
        # Same inputs, same algorithm: the float32 run costs exactly
        # half of the float64 run.
        assert outcomes[1].objective == pytest.approx(
            outcomes[0].objective * 0.5)
