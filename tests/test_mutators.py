"""Tests for the automatically generated mutator pool."""

import numpy as np
import pytest

from repro.autotuner.candidate import Candidate
from repro.autotuner.mutators import (
    CompoundMutator,
    MutationFailed,
    MutatorPool,
    ScalarScaleMutator,
    SwitchMutator,
    TreeAddLevelMutator,
    TreeChangeLeafMutator,
    TreeRemoveLevelMutator,
    TreeScaleCutoffMutator,
    UndoMutator,
)
from repro.config.parameters import (
    ChoiceSiteParam,
    ParameterSpace,
    ScalarParam,
    SizeValueParam,
    SwitchParam,
)


def space() -> ParameterSpace:
    return ParameterSpace([
        ChoiceSiteParam("choice", 4),
        SizeValueParam("accvar", 1, 1000, 10, is_accuracy_variable=True,
                       accuracy_direction=+1),
        SizeValueParam("uniformvar", 0.0, 1.0, 0.5, integer=False,
                       scaling="uniform"),
        ScalarParam("cut", 1, 512, 16),
        SwitchParam("mode", ("a", "b", "c")),
    ])


def fresh_candidate() -> Candidate:
    return Candidate(space().default_config())


RNG = lambda seed=0: np.random.default_rng(seed)


class TestTreeChangeLeaf:
    def test_changes_leaf_at_current_size(self):
        mutator = TreeChangeLeafMutator(space()["choice"])
        candidate = fresh_candidate()
        config, record = mutator.mutate(candidate, 16, RNG())
        assert config.tree("choice").lookup(16) != \
            candidate.config.tree("choice").lookup(16)
        assert record.changes[0][0] == "choice"

    def test_respects_domain(self):
        mutator = TreeChangeLeafMutator(space()["accvar"])
        candidate = fresh_candidate()
        for seed in range(30):
            config, _ = mutator.mutate(candidate, 16, RNG(seed))
            value = config.tree("accvar").lookup(16)
            assert 1 <= value <= 1000

    def test_single_choice_fails(self):
        param = ChoiceSiteParam("solo", 1)
        sp = ParameterSpace([param])
        candidate = Candidate(sp.default_config())
        with pytest.raises(MutationFailed):
            TreeChangeLeafMutator(param).mutate(candidate, 16, RNG())

    def test_uniform_scaling_resamples(self):
        mutator = TreeChangeLeafMutator(space()["uniformvar"])
        candidate = fresh_candidate()
        config, _ = mutator.mutate(candidate, 16, RNG())
        assert config.tree("uniformvar").lookup(16) != 0.5


class TestTreeAddLevel:
    def test_cutoff_at_three_quarters_n(self):
        mutator = TreeAddLevelMutator(space()["choice"])
        candidate = fresh_candidate()
        config, record = mutator.mutate(candidate, 16, RNG())
        assert config.tree("choice").cutoffs == (12.0,)
        assert record.preserved_below == 12.0

    def test_behaviour_below_preserved(self):
        mutator = TreeAddLevelMutator(space()["accvar"])
        candidate = fresh_candidate()
        config, record = mutator.mutate(candidate, 16, RNG())
        old = candidate.config.tree("accvar")
        new = config.tree("accvar")
        for n in (1, 5, 11):
            assert new.lookup(n) == old.lookup(n)

    def test_not_applicable_at_max_depth(self):
        param = space()["choice"]
        mutator = TreeAddLevelMutator(param, max_levels=1)
        candidate = fresh_candidate()
        config, _ = mutator.mutate(candidate, 16, RNG())
        deeper = Candidate(config)
        assert not mutator.applies(deeper, 32)
        with pytest.raises(MutationFailed):
            mutator.mutate(deeper, 32, RNG())

    def test_not_applicable_for_tiny_sizes(self):
        mutator = TreeAddLevelMutator(space()["choice"])
        assert not mutator.applies(fresh_candidate(), 1)


class TestTreeRemoveLevel:
    def test_round_trip_depth(self):
        add = TreeAddLevelMutator(space()["choice"])
        remove = TreeRemoveLevelMutator(space()["choice"])
        candidate = fresh_candidate()
        assert not remove.applies(candidate, 16)
        config, _ = add.mutate(candidate, 16, RNG())
        child = Candidate(config)
        assert remove.applies(child, 16)
        config2, _ = remove.mutate(child, 16, RNG())
        assert config2.tree("choice").num_levels == 0


class TestTreeScaleCutoff:
    def test_requires_levels(self):
        mutator = TreeScaleCutoffMutator(space()["choice"])
        assert not mutator.applies(fresh_candidate(), 16)

    def test_scales_a_cutoff(self):
        add = TreeAddLevelMutator(space()["choice"])
        config, _ = add.mutate(fresh_candidate(), 16, RNG())
        child = Candidate(config)
        mutator = TreeScaleCutoffMutator(space()["choice"])
        new_config, _ = mutator.mutate(child, 16, RNG(3))
        assert new_config.tree("choice").cutoffs != \
            config.tree("choice").cutoffs


class TestScalarAndSwitch:
    def test_scalar_scale_in_domain(self):
        mutator = ScalarScaleMutator(space()["cut"])
        candidate = fresh_candidate()
        for seed in range(30):
            config, _ = mutator.mutate(candidate, 16, RNG(seed))
            assert 1 <= config["cut"] <= 512
            assert config["cut"] != candidate.config["cut"]

    def test_switch_changes_value(self):
        mutator = SwitchMutator(space()["mode"])
        candidate = fresh_candidate()
        config, _ = mutator.mutate(candidate, 16, RNG())
        assert config["mode"] != candidate.config["mode"]
        assert config["mode"] in ("a", "b", "c")


class TestMetaMutators:
    def test_undo_restores_parent_config(self):
        mutator = TreeChangeLeafMutator(space()["choice"])
        parent = fresh_candidate()
        config, record = mutator.mutate(parent, 16, RNG())
        child = Candidate(config, parent=parent, mutation=record)
        undo = UndoMutator()
        assert undo.applies(child, 16)
        restored, _ = undo.mutate(child, 16, RNG())
        assert restored == parent.config

    def test_undo_not_applicable_without_history(self):
        assert not UndoMutator().applies(fresh_candidate(), 16)

    def test_compound_applies_multiple_changes(self):
        base = [ScalarScaleMutator(space()["cut"]),
                SwitchMutator(space()["mode"])]
        compound = CompoundMutator(base, min_applications=2,
                                   max_applications=2)
        config, record = compound.mutate(fresh_candidate(), 16, RNG(1))
        changed = [key for key, _ in record.changes]
        assert len(changed) >= 1
        assert config != fresh_candidate().config

    def test_compound_records_first_seen_old_values(self):
        base = [ScalarScaleMutator(space()["cut"])]
        compound = CompoundMutator(base, min_applications=2,
                                   max_applications=3)
        parent = fresh_candidate()
        config, record = compound.mutate(parent, 16, RNG(2))
        # Undoing through the record restores the original value.
        restored = config.with_entries(dict(record.changes))
        assert restored["cut"] == parent.config["cut"]


class TestPool:
    def test_generated_from_space(self):
        pool = MutatorPool.from_space(space())
        names = {m.name for m in pool}
        assert "tree.change:choice" in names
        assert "tree.addlevel:accvar" in names
        assert "scalar.scale:cut" in names
        assert "switch:mode" in names
        assert "meta.compound" in names
        assert "meta.undo" in names

    def test_no_meta_option(self):
        pool = MutatorPool.from_space(space(), include_meta=False)
        assert all(not m.name.startswith("meta.") for m in pool)

    def test_uniform_ablation_replaces_lognormal(self):
        pool = MutatorPool.from_space(space(), lognormal_scaling=False)
        change = next(m for m in pool
                      if m.name == "tree.change:accvar")
        assert change.param.scaling == "uniform"

    def test_random_selection_applicable_only(self):
        pool = MutatorPool.from_space(space())
        candidate = fresh_candidate()
        for seed in range(20):
            mutator = pool.random(candidate, 16, RNG(seed))
            assert mutator is not None
            assert mutator.applies(candidate, 16)

    def test_fixed_parameters_produce_empty_pool(self):
        fixed = ParameterSpace([
            SizeValueParam("v", 5, 5, 5),
            ScalarParam("c", 2, 2, 2),
            SwitchParam("s", ("only",)),
            ChoiceSiteParam("ch", 1),
        ])
        pool = MutatorPool.from_space(fixed)
        assert len(pool) == 0
        assert pool.random(fresh_candidate(), 16,
                           np.random.default_rng(0)) is None


class TestMutatedConfigsStayValid:
    def test_random_walk_stays_in_domain(self):
        sp = space()
        pool = MutatorPool.from_space(sp)
        candidate = Candidate(sp.default_config())
        rng = RNG(7)
        for step in range(120):
            mutator = pool.random(candidate, 16, rng)
            try:
                config, record = mutator.mutate(candidate, 16, rng)
            except MutationFailed:
                continue
            sp.validate(config)
            candidate = Candidate(config, parent=candidate,
                                  mutation=record)
