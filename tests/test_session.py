"""The resumable TuningSession stepper.

The load-bearing contract is the determinism guard: for a fixed seed,
``Autotuner.tune`` (now a thin driver over ``TuningSession``) must be
bit-identical — config digests and guarantees — to the pre-refactor
monolithic loop.  ``legacy_tune`` below *is* that loop, phase for
phase, kept as an executable specification; if the session's state
machine ever reorders a phase or consumes the RNG differently, the
comparison fails.
"""

from __future__ import annotations

import pytest

from repro.autotuner import (
    Autotuner,
    ProgramTestHarness,
    TuningResult,
    TuningSession,
)
from repro.autotuner.candidate import Candidate
from repro.autotuner.pruning import k_fastest
from repro.compiler.compile import compile_program
from repro.errors import TrainingError
from repro.rng import generator_for
from repro.runtime.backends import config_digest

from tests.conftest import approxmean_inputs, make_approxmean_transform
from tests.test_tuner import quick_settings


def make_tuner(**overrides) -> Autotuner:
    program, _ = compile_program(make_approxmean_transform())
    harness = ProgramTestHarness(program, approxmean_inputs, base_seed=3)
    return Autotuner(program, harness, quick_settings(**overrides))


def legacy_tune(tuner: Autotuner) -> TuningResult:
    """The pre-refactor ``Autotuner.tune`` loop, verbatim.

    Drives the same phase methods in the same order with the same RNG
    stream; the executable reference the session is held to.
    """
    settings = tuner.settings
    rng = generator_for(settings.seed, "tuner", tuner.program.root)
    population = tuner._initial_population(rng)
    sizes = settings.sizes()
    for n in sizes:
        tuner._test_population(population, n)
        for _ in range(settings.rounds_per_size):
            tuner._random_mutation(population, n, rng)
            if settings.use_guided_mutation:
                tuner._guided_mutation(population, n)
            pruned = tuner._prune(population, n)
            if pruned:
                population = pruned
    final_n = sizes[-1]
    best_per_bin = {}
    for target in tuner.bins:
        eligible = [c for c in population
                    if c.meets_accuracy(final_n, target, tuner.metric,
                                        settings.accuracy_confidence)]
        fastest = k_fastest(eligible, 1, tuner.comparator, final_n)
        if fastest:
            best_per_bin[target] = fastest[0]
    unmet = tuple(t for t in tuner.bins if t not in best_per_bin)
    return TuningResult(
        program=tuner.program, bins=tuner.bins,
        best_per_bin=best_per_bin, population=population,
        sizes=sizes, unmet_bins=unmet,
        trials_run=tuner.harness.trials_run, settings=settings)


def fingerprint(result: TuningResult) -> dict:
    """Config digests + guarantees, the acceptance-criterion identity."""
    return {
        "digests": {target: config_digest(candidate.config)
                    for target, candidate
                    in result.best_per_bin.items()},
        "guarantees": result.bin_guarantees(),
        "unmet": result.unmet_bins,
        "trials": result.trials_run,
    }


class TestDeterminismGuard:
    def test_tune_matches_pre_refactor_loop(self):
        """Acceptance criterion: driver == legacy loop, bit for bit."""
        legacy = fingerprint(legacy_tune(make_tuner()))
        stepped = fingerprint(make_tuner().tune())
        assert stepped == legacy

    @pytest.mark.parametrize("budget", [1, 3, 7])
    def test_sliced_stepping_matches_single_run(self, budget):
        """step(budget) slices must compose to the identical result."""
        whole = fingerprint(make_tuner().tune())
        session = TuningSession(make_tuner())
        steps = 0
        while not session.done:
            progress = session.step(budget)
            steps += 1
            assert progress.units >= 1
            assert steps < 10_000  # the stepper must terminate
        assert fingerprint(session.result()) == whole
        assert steps > 1  # small budgets really did slice the run

    def test_run_equals_tune(self):
        assert fingerprint(TuningSession(make_tuner()).run()) == \
            fingerprint(make_tuner().tune())

    def test_zero_rounds_matches_legacy(self):
        """rounds_per_size=0 (test-only tuning) ran an empty inner
        loop in the legacy driver; the state machine must too."""
        legacy = fingerprint(legacy_tune(make_tuner(rounds_per_size=0)))
        stepped = fingerprint(make_tuner(rounds_per_size=0).tune())
        assert stepped == legacy


class TestStepper:
    def test_explicit_state_progresses(self):
        session = TuningSession(make_tuner())
        assert session.phase == "test"
        assert session.current_size == session.sizes[0]
        assert not session.done
        session.step()  # one unit: the initial population test
        assert session.phase == "mutate"
        session.run()
        assert session.done
        assert session.current_size is None

    def test_result_before_finish_raises(self):
        session = TuningSession(make_tuner())
        with pytest.raises(TrainingError):
            session.result()

    def test_step_after_done_is_a_noop(self):
        session = TuningSession(make_tuner())
        session.run()
        progress = session.step(100)
        assert progress.done
        assert progress.units == 0
        assert progress.trials == 0

    def test_zero_budget_still_progresses(self):
        session = TuningSession(make_tuner())
        progress = session.step(0)
        assert progress.units == 1

    def test_progress_reports_trials(self):
        session = TuningSession(make_tuner())
        progress = session.step(5)
        assert progress.trials >= 5 or progress.done
        assert "n=" in str(progress) or progress.done

    def test_repr_names_position(self):
        session = TuningSession(make_tuner())
        assert "phase=test" in repr(session)

    def test_printable_at_every_pause(self):
        """str/repr must hold at *every* stop point — including the
        finalize pause, where there is no current size."""
        session = TuningSession(make_tuner())
        while not session.done:
            progress = session.step()
            assert str(progress)
            assert repr(session)
        assert "finished" in str(session.step())


class TestSeeding:
    def test_seed_configs_join_population(self):
        tuner = make_tuner()
        seeds = (tuner.program.default_config(),)
        session = TuningSession(tuner, seed_configs=seeds)
        assert session.seeded
        assert len(session.population) == \
            1 + tuner.settings.initial_random + len(seeds)
        assert session.population[-1].config == seeds[0]

    def test_seeded_session_completes(self):
        # Seed with the configs a previous run deployed: the
        # incremental-retune path.
        base = make_tuner().tune()
        seeds = tuple(c.config for c in base.best_per_bin.values())
        session = TuningSession(make_tuner(), seed_configs=seeds)
        result = session.run()
        assert result.unmet_bins == ()

    def test_autotuner_session_helper(self):
        tuner = make_tuner()
        session = tuner.session(
            seed_configs=(tuner.program.default_config(),))
        assert isinstance(session, TuningSession)
        assert session.seeded

    def test_unseeded_flag(self):
        assert not TuningSession(make_tuner()).seeded
