"""End-to-end tests of the autotuning main loop."""

import numpy as np
import pytest

from repro.autotuner import Autotuner, ProgramTestHarness, TunerSettings
from repro.compiler.compile import compile_program
from repro.errors import TrainingError
from repro.lang.transform import Transform

from tests.conftest import approxmean_inputs, make_approxmean_transform


def quick_settings(**overrides) -> TunerSettings:
    defaults = dict(input_sizes=(16.0, 64.0, 256.0), rounds_per_size=2,
                    mutation_attempts=6, min_trials=2, max_trials=5,
                    seed=7, initial_random=1, guided_max_evaluations=16,
                    accuracy_confidence=None)
    defaults.update(overrides)
    return TunerSettings(**defaults)


def tune_approxmean(**overrides):
    program, _ = compile_program(make_approxmean_transform())
    harness = ProgramTestHarness(program, approxmean_inputs, base_seed=3)
    tuner = Autotuner(program, harness, quick_settings(**overrides))
    return program, harness, tuner.tune()


class TestTuneApproxmean:
    def test_all_bins_met(self):
        _, _, result = tune_approxmean()
        assert result.unmet_bins == ()
        assert set(result.best_per_bin) == {0.5, 0.9, 0.99}

    def test_frontier_costs_weakly_increase_with_accuracy(self):
        _, _, result = tune_approxmean()
        costs = [cost for _, _, cost in result.frontier()]
        assert costs[0] <= costs[-1]

    def test_tuned_configs_meet_their_bins(self):
        program, harness, result = tune_approxmean()
        n = result.sizes[-1]
        for target, candidate in result.best_per_bin.items():
            assert candidate.meets_accuracy(n, target, harness.metric)

    def test_config_for_unknown_bin_raises(self):
        _, _, result = tune_approxmean()
        with pytest.raises(TrainingError):
            result.config_for(0.12345)

    def test_deterministic_given_seed(self):
        _, _, first = tune_approxmean()
        _, _, second = tune_approxmean()
        assert first.trials_run == second.trials_run
        assert {t: c.config for t, c in first.best_per_bin.items()} == \
            {t: c.config for t, c in second.best_per_bin.items()}

    def test_logging_hook_invoked(self):
        messages = []
        tune_approxmean(log=messages.append)
        assert any("population" in m for m in messages)


class TestTargetEnforcement:
    def build_impossible(self):
        """A transform whose accuracy can never reach its top bin."""

        def metric(outputs, inputs):
            return 0.3  # constant, never 0.9

        transform = Transform("impossible", inputs=("x",),
                              outputs=("y",), accuracy_metric=metric,
                              accuracy_bins=(0.1, 0.9))
        transform.rule(outputs=("y",), inputs=("x",))(lambda ctx, x: x)
        return compile_program(transform)[0]

    def test_warn_mode_records_unmet(self):
        program = self.build_impossible()
        harness = ProgramTestHarness(program, lambda n, rng: {"x": 0})
        result = Autotuner(program, harness,
                           quick_settings(require_targets="warn")).tune()
        assert result.unmet_bins == (0.9,)
        with pytest.raises(TrainingError):
            result.config_for(0.9)

    def test_error_mode_raises(self):
        program = self.build_impossible()
        harness = ProgramTestHarness(program, lambda n, rng: {"x": 0})
        with pytest.raises(TrainingError):
            Autotuner(program, harness,
                      quick_settings(require_targets="error")).tune()

    def test_transform_without_bins_rejected(self):
        transform = Transform("nobins", inputs=("x",), outputs=("y",),
                              accuracy_metric=lambda o, i: 1.0,
                              accuracy_bins=())
        transform.rule(outputs=("y",), inputs=("x",))(lambda ctx, x: x)
        program, _ = compile_program(transform)
        harness = ProgramTestHarness(program, lambda n, rng: {"x": 0})
        with pytest.raises(TrainingError):
            Autotuner(program, harness, quick_settings())


class TestSettings:
    def test_exponential_default_sizes(self):
        settings = TunerSettings(max_input_size=64, min_input_size=2)
        assert settings.sizes() == (2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

    def test_non_power_max_included(self):
        settings = TunerSettings(max_input_size=100, min_input_size=32)
        assert settings.sizes() == (32.0, 64.0, 100.0)

    def test_explicit_sizes_override(self):
        settings = TunerSettings(input_sizes=(3, 7))
        assert settings.sizes() == (3.0, 7.0)


class TestResultsCopyOptimisation:
    def test_copy_disabled_runs_more_trials(self):
        _, harness_on, result_on = tune_approxmean(
            copy_parent_results=True, seed=9)
        _, harness_off, result_off = tune_approxmean(
            copy_parent_results=False, seed=9)
        # Identical search path (same seed) but the copying variant
        # reuses parent trials, so it can only run fewer or equal.
        assert result_on.trials_run <= result_off.trials_run


class TestAblationSwitches:
    def test_guided_mutation_can_be_disabled(self):
        _, _, result = tune_approxmean(use_guided_mutation=False)
        # The result object is still produced; bins may or may not be
        # met depending on random mutation luck.
        assert result.trials_run > 0

    def test_uniform_scaling_pool(self):
        program, _ = compile_program(make_approxmean_transform())
        harness = ProgramTestHarness(program, approxmean_inputs,
                                     base_seed=3)
        tuner = Autotuner(program, harness,
                          quick_settings(lognormal_scaling=False))
        result = tuner.tune()
        assert result.trials_run > 0
