"""Tests for the from-scratch linear algebra substrate (numpy oracle)."""

import numpy as np
import pytest

from repro.linalg.banded import banded_cholesky_factor, banded_cholesky_solve
from repro.linalg.bisection import (
    bisect_eigenvalues,
    inverse_iteration,
    solve_shifted_tridiagonal,
    sturm_count,
)
from repro.linalg.cg import conjugate_gradient
from repro.linalg.householder import tridiagonalize_symmetric
from repro.linalg.poisson_ops import (
    apply_laplacian_1d,
    apply_laplacian_2d,
    laplacian_1d_diagonal,
    poisson_2d_banded,
)
from repro.linalg.precond import (
    jacobi_preconditioner,
    polynomial_preconditioner,
)
from repro.linalg.svd import (
    rank_k_reconstruction,
    singular_triplets_full,
    singular_triplets_topk,
    symmetric_embedding,
)
from repro.linalg.tridiag_qr import tridiagonal_eigen_qr


def random_symmetric(n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    return a + a.T


def random_tridiagonal(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=n), rng.normal(size=n - 1)


class TestBandedCholesky:
    def test_poisson_solve_matches_dense(self):
        n = 6
        h = 1.0 / (n + 1)
        band = poisson_2d_banded(n, h)
        factor, ops = banded_cholesky_factor(band)
        rng = np.random.default_rng(0)
        b = rng.normal(size=n * n)
        x, solve_ops = banded_cholesky_solve(factor, b)
        residual = apply_laplacian_2d(x.reshape(n, n), h).reshape(-1) - b
        assert np.abs(residual).max() < 1e-10
        assert ops > 0 and solve_ops > 0

    def test_random_spd_band(self):
        rng = np.random.default_rng(1)
        size, bandwidth = 30, 4
        band = np.zeros((bandwidth + 1, size))
        band[0] = rng.uniform(5, 6, size)
        for offset in range(1, bandwidth + 1):
            band[offset, :size - offset] = rng.uniform(-0.5, 0.5,
                                                       size - offset)
        dense = np.zeros((size, size))
        for offset in range(bandwidth + 1):
            for j in range(size - offset):
                dense[j + offset, j] = band[offset, j]
                dense[j, j + offset] = band[offset, j]
        factor, _ = banded_cholesky_factor(band)
        b = rng.normal(size=size)
        x, _ = banded_cholesky_solve(factor, b)
        assert np.allclose(dense @ x, b, atol=1e-9)

    def test_not_positive_definite_rejected(self):
        band = np.array([[1.0, -5.0], [0.0, 0.0]])
        with pytest.raises(np.linalg.LinAlgError):
            banded_cholesky_factor(band)

    def test_solve_shape_checked(self):
        band = poisson_2d_banded(3, 0.25)
        factor, _ = banded_cholesky_factor(band)
        with pytest.raises(ValueError):
            banded_cholesky_solve(factor, np.ones(5))


class TestHouseholder:
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 25])
    def test_reconstruction(self, n):
        a = random_symmetric(n)
        d, e, q, ops = tridiagonalize_symmetric(a)
        t = np.diag(d)
        if n > 1:
            t += np.diag(e, 1) + np.diag(e, -1)
        assert np.allclose(q @ t @ q.T, a, atol=1e-10)
        assert np.allclose(q @ q.T, np.eye(n), atol=1e-10)

    def test_without_q(self):
        a = random_symmetric(10)
        d, e, q, _ = tridiagonalize_symmetric(a, accumulate_q=False)
        assert q is None
        ref = np.linalg.eigvalsh(a)
        values, _, _ = tridiagonal_eigen_qr(d, e)
        assert np.allclose(values, ref, atol=1e-9)

    def test_asymmetric_rejected(self):
        with pytest.raises(ValueError):
            tridiagonalize_symmetric(np.arange(9.0).reshape(3, 3))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            tridiagonalize_symmetric(np.zeros((3, 4)))


class TestTridiagonalQR:
    @pytest.mark.parametrize("n", [1, 2, 3, 10, 40])
    def test_eigenvalues_match_numpy(self, n):
        d, e = random_tridiagonal(n, seed=n)
        t = np.diag(d)
        if n > 1:
            t += np.diag(e, 1) + np.diag(e, -1)
        values, vectors, _ = tridiagonal_eigen_qr(d, e, np.eye(n))
        assert np.allclose(values, np.linalg.eigvalsh(t), atol=1e-9)
        assert np.abs(t @ vectors - vectors * values).max() < 1e-8

    def test_dense_eigensolve_through_householder(self):
        a = random_symmetric(20, seed=3)
        d, e, q, _ = tridiagonalize_symmetric(a)
        values, vectors, _ = tridiagonal_eigen_qr(d, e, q)
        assert np.allclose(values, np.linalg.eigvalsh(a), atol=1e-9)
        assert np.abs(a @ vectors - vectors * values).max() < 1e-8

    def test_offdiagonal_length_checked(self):
        with pytest.raises(ValueError):
            tridiagonal_eigen_qr(np.ones(4), np.ones(5))

    def test_values_sorted_ascending(self):
        d, e = random_tridiagonal(15, seed=9)
        values, _, _ = tridiagonal_eigen_qr(d, e)
        assert np.all(np.diff(values) >= 0)


class TestBisection:
    def test_sturm_count_monotone_and_correct(self):
        d, e = random_tridiagonal(12, seed=5)
        t = np.diag(d) + np.diag(e, 1) + np.diag(e, -1)
        ref = np.linalg.eigvalsh(t)
        for x in (-10.0, ref[3] + 1e-9, ref[7] + 1e-9, 10.0):
            assert sturm_count(d, e, x) == int(np.sum(ref < x))

    def test_bisect_selected_eigenvalues(self):
        d, e = random_tridiagonal(20, seed=6)
        t = np.diag(d) + np.diag(e, 1) + np.diag(e, -1)
        ref = np.linalg.eigvalsh(t)
        indices = [0, 5, 19]
        values, ops = bisect_eigenvalues(d, e, indices)
        assert np.allclose(values, ref[indices], atol=1e-9)
        assert ops > 0

    def test_bisect_index_validated(self):
        d, e = random_tridiagonal(5, seed=0)
        with pytest.raises(ValueError):
            bisect_eigenvalues(d, e, [7])

    def test_inverse_iteration_residual(self):
        d, e = random_tridiagonal(30, seed=7)
        t = np.diag(d) + np.diag(e, 1) + np.diag(e, -1)
        ref = np.linalg.eigvalsh(t)
        rng = np.random.default_rng(0)
        vector, _ = inverse_iteration(d, e, ref[10], rng)
        residual = t @ vector - ref[10] * vector
        assert np.linalg.norm(residual) < 1e-6
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_shifted_solve_matches_dense(self):
        d, e = random_tridiagonal(25, seed=8)
        t = np.diag(d) + np.diag(e, 1) + np.diag(e, -1)
        rng = np.random.default_rng(1)
        b = rng.normal(size=25)
        shift = 0.321
        x = solve_shifted_tridiagonal(d, e, shift, b)
        assert np.allclose((t - shift * np.eye(25)) @ x, b, atol=1e-8)


class TestSVD:
    def test_embedding_structure(self):
        a = np.arange(6.0).reshape(2, 3)
        h = symmetric_embedding(a)
        assert h.shape == (5, 5)
        assert np.allclose(h, h.T)
        assert np.allclose(h[3:, :3], a)

    @pytest.mark.parametrize("k", [1, 3, 8])
    def test_full_path_matches_numpy(self, k):
        rng = np.random.default_rng(2)
        a = rng.uniform(0, 1, size=(8, 8))
        sigma, left, right, _ = singular_triplets_full(a, k)
        ref = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(sigma, ref[:k], atol=1e-9)
        approx, _ = rank_k_reconstruction(sigma, left, right)
        u, s, vt = np.linalg.svd(a)
        ref_approx = (u[:, :k] * s[:k]) @ vt[:k]
        assert np.allclose(approx, ref_approx, atol=1e-8)

    @pytest.mark.parametrize("k", [1, 4])
    def test_bisection_path_matches_numpy(self, k):
        rng = np.random.default_rng(3)
        a = rng.uniform(0, 1, size=(10, 10))
        sigma, left, right, _ = singular_triplets_topk(a, k, rng)
        ref = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(sigma, ref[:k], atol=1e-6)
        approx, _ = rank_k_reconstruction(sigma, left, right)
        u, s, vt = np.linalg.svd(a)
        ref_approx = (u[:, :k] * s[:k]) @ vt[:k]
        assert np.abs(approx - ref_approx).max() < 1e-5

    def test_rank_k_error_equals_tail_energy(self):
        rng = np.random.default_rng(4)
        a = rng.uniform(0, 1, size=(12, 12))
        k = 5
        sigma, left, right, _ = singular_triplets_full(a, k)
        approx, _ = rank_k_reconstruction(sigma, left, right)
        tail = np.linalg.svd(a, compute_uv=False)[k:]
        assert np.linalg.norm(a - approx) == pytest.approx(
            np.linalg.norm(tail), rel=1e-8)

    def test_topk_cheaper_than_full_for_small_k(self):
        rng = np.random.default_rng(5)
        a = rng.uniform(0, 1, size=(24, 24))
        _, _, _, ops_full = singular_triplets_full(a, 1)
        _, _, _, ops_topk = singular_triplets_topk(a, 1, rng)
        assert ops_topk < ops_full


class TestCG:
    def operator(self, n, extra=None):
        return (lambda v: apply_laplacian_1d(v, 1.0, extra)), 5.0 * n

    def test_solves_spd_system(self):
        n = 32
        apply_a, cost = self.operator(n)
        rng = np.random.default_rng(0)
        b = rng.normal(size=n)
        x, norms, ops = conjugate_gradient(apply_a, b, iterations=2 * n,
                                           operator_cost=cost,
                                           tolerance=1e-12)
        assert np.allclose(apply_a(x), b, atol=1e-8)
        assert norms[-1] < norms[0]
        assert ops > 0

    def test_tolerance_early_stop(self):
        n = 128
        apply_a, cost = self.operator(n)
        rng = np.random.default_rng(3)
        b = rng.normal(size=n)
        _, norms_loose, _ = conjugate_gradient(
            apply_a, b, iterations=500, operator_cost=cost,
            tolerance=0.3 * np.linalg.norm(b))
        _, norms_tight, _ = conjugate_gradient(
            apply_a, b, iterations=500, operator_cost=cost,
            tolerance=1e-10)
        assert len(norms_loose) < len(norms_tight)

    def test_jacobi_helps_on_perturbed_diagonal(self):
        n = 128
        rng = np.random.default_rng(1)
        extra = rng.uniform(0.0, 5.0, size=n)
        apply_a, cost = self.operator(n, extra)
        b = rng.normal(size=n)
        minv, pcost = jacobi_preconditioner(
            laplacian_1d_diagonal(n, 1.0, extra))
        tol = 1e-8 * np.linalg.norm(b)
        _, plain, _ = conjugate_gradient(apply_a, b, iterations=400,
                                         operator_cost=cost, tolerance=tol)
        _, precond, _ = conjugate_gradient(
            apply_a, b, iterations=400, apply_minv=minv,
            operator_cost=cost, preconditioner_cost=pcost, tolerance=tol)
        assert len(precond) <= len(plain)

    def test_polynomial_reduces_iterations(self):
        n = 256
        apply_a, cost = self.operator(n)
        rng = np.random.default_rng(2)
        b = rng.normal(size=n)
        tol = 1e-6 * np.linalg.norm(b)
        minv, pcost = polynomial_preconditioner(apply_a, 4, 1.0 / 4.0,
                                                cost, n)
        _, plain, _ = conjugate_gradient(apply_a, b, iterations=1000,
                                         operator_cost=cost, tolerance=tol)
        _, poly, _ = conjugate_gradient(
            apply_a, b, iterations=1000, apply_minv=minv,
            operator_cost=cost, preconditioner_cost=pcost, tolerance=tol)
        assert len(poly) < len(plain)

    def test_preconditioner_validation(self):
        with pytest.raises(ValueError):
            jacobi_preconditioner(np.array([1.0, -2.0]))
        with pytest.raises(ValueError):
            polynomial_preconditioner(lambda v: v, 0, 0.1, 1.0, 4)
        with pytest.raises(ValueError):
            polynomial_preconditioner(lambda v: v, 2, -0.1, 1.0, 4)


class TestPoissonOps:
    def test_1d_matches_dense(self):
        n = 10
        t = (np.diag(np.full(n, 2.0)) + np.diag(np.full(n - 1, -1.0), 1)
             + np.diag(np.full(n - 1, -1.0), -1))
        rng = np.random.default_rng(0)
        x = rng.normal(size=n)
        assert np.allclose(apply_laplacian_1d(x, 1.0), t @ x)

    def test_1d_extra_diagonal(self):
        n = 5
        extra = np.arange(1.0, 6.0)
        x = np.ones(n)
        expected = apply_laplacian_1d(x, 1.0) + extra * x
        assert np.allclose(apply_laplacian_1d(x, 1.0, extra), expected)

    def test_1d_diagonal(self):
        assert np.allclose(laplacian_1d_diagonal(4, 0.5),
                           np.full(4, 8.0))

    def test_2d_banded_matches_apply(self):
        n = 5
        h = 1.0 / (n + 1)
        band = poisson_2d_banded(n, h)
        size = n * n
        dense = np.zeros((size, size))
        for offset in range(band.shape[0]):
            for j in range(size - offset):
                dense[j + offset, j] = band[offset, j]
                dense[j, j + offset] = band[offset, j]
        rng = np.random.default_rng(1)
        u = rng.normal(size=(n, n))
        assert np.allclose(dense @ u.reshape(-1),
                           apply_laplacian_2d(u, h).reshape(-1))
