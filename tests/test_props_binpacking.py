"""Property-based tests for bin packing invariants (hypothesis)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.binpacking.algorithms import ALGORITHMS, validate_packing
from repro.binpacking.datagen import generate_items_with_known_optimal

items_strategy = st.lists(
    st.floats(min_value=0.001, max_value=1.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=60)


@settings(max_examples=40, deadline=None)
@given(items=items_strategy,
       name=st.sampled_from(sorted(ALGORITHMS)))
def test_every_algorithm_produces_valid_packings(items, name):
    array = np.array(items)
    packing = ALGORITHMS[name](array)
    assert validate_packing(array, packing)


@settings(max_examples=40, deadline=None)
@given(items=items_strategy,
       name=st.sampled_from(sorted(ALGORITHMS)))
def test_bin_count_bounds(items, name):
    """Volume lower bound and trivial n upper bound hold for any input."""
    array = np.array(items)
    packing = ALGORITHMS[name](array)
    assert math.ceil(array.sum() - 1e-9) <= packing.num_bins <= len(items)


@settings(max_examples=40, deadline=None)
@given(items=items_strategy)
def test_next_fit_two_opt_bound(items):
    """NextFit uses < 2 * volume + 1 bins (the classic 2-OPT argument)."""
    array = np.array(items)
    packing = ALGORITHMS["NextFit"](array)
    assert packing.num_bins <= 2 * math.ceil(array.sum()) + 1


@settings(max_examples=40, deadline=None)
@given(items=items_strategy)
def test_decreasing_variants_agree_on_bin_count_with_sorted_input(items):
    """Running X on reverse-sorted input equals XDecreasing's count."""
    array = np.array(items)
    sorted_items = np.sort(array)[::-1]
    for base, decreasing in (("FirstFit", "FirstFitDecreasing"),
                             ("BestFit", "BestFitDecreasing"),
                             ("NextFit", "NextFitDecreasing")):
        direct = ALGORITHMS[base](sorted_items).num_bins
        wrapped = ALGORITHMS[decreasing](array).num_bins
        assert direct == wrapped


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=1, max_value=200),
       seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_datagen_optimality_invariants(n, seed):
    rng = np.random.default_rng(seed)
    items, optimal = generate_items_with_known_optimal(n, rng)
    assert len(items) == n
    assert np.all(items > 0)
    assert np.all(items <= 1.0 + 1e-9)
    assert items.sum() == pytest.approx(optimal, abs=1e-6)
