"""Serving telemetry: the shared percentile, rolling windows, drift."""

from __future__ import annotations

import pytest

from repro.lang.metrics import AccuracyMetric
from repro.runtime.guarantees import statistical_guarantee
from repro.serving.telemetry import (
    DriftDetector,
    ServingTelemetry,
    percentile,
)

higher = AccuracyMetric(lambda o, i: 0.0, name="acc",
                        higher_is_better=True)
lower = AccuracyMetric(lambda o, i: 0.0, name="err",
                       higher_is_better=False)


class TestPercentile:
    """The ceil-based nearest-rank percentile (shared with the engine)."""

    def test_empty_is_zero(self):
        assert percentile([], 0.95) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.95) == 7.0

    def test_median_of_even_count_is_lower_middle(self):
        # Nearest-rank p50 over 4 values is the 2nd: ceil(0.5*4) = 2.
        # The old round()-based rank picked the 3rd (round(1.5) -> 2).
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.0

    def test_p95_not_underestimated_on_banker_rounding_tie(self):
        # 31 samples: ceil(0.95 * 31) = 30 -> the 30th value.  The old
        # round(0.95 * 30) banker's-rounded 28.5 down to 28 and
        # returned the 29th — an underestimate.
        values = [float(i) for i in range(1, 32)]
        assert percentile(values, 0.95) == 30.0

    def test_extremes(self):
        values = [3.0, 1.0, 2.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 3.0

    def test_unsorted_input(self):
        assert percentile([5.0, 1.0, 9.0, 3.0], 0.75) == 5.0

    def test_fraction_above_one_clamps_to_max(self):
        assert percentile([1.0, 2.0], 1.5) == 2.0


class TestServingTelemetry:
    def test_record_and_snapshot(self):
        telemetry = ServingTelemetry(window=8)
        for accuracy in (0.9, 0.95, 0.85):
            telemetry.record("p", 0.9, ok=True, accuracy=accuracy,
                             latency=0.001)
        telemetry.record("p", 0.9, ok=False, accuracy=0.2,
                         escalations=1, fallback=True, latency=0.002)
        snap = telemetry.snapshot("p", 0.9)
        assert snap.served == 3
        assert snap.errors == 1
        assert snap.escalations == 1
        assert snap.fallbacks == 1
        assert snap.samples == 4
        assert snap.mean_accuracy == pytest.approx(
            (0.9 + 0.95 + 0.85 + 0.2) / 4)
        assert snap.worst_accuracy == 0.2
        assert snap.p95_latency >= snap.p50_latency > 0.0
        assert "p/bin 0.9" in str(snap)

    def test_window_is_bounded(self):
        telemetry = ServingTelemetry(window=4)
        for i in range(10):
            telemetry.record("p", 0.5, ok=True, accuracy=float(i))
        assert telemetry.accuracies("p", 0.5) == (6.0, 7.0, 8.0, 9.0)
        # Lifetime counters keep counting past the window.
        assert telemetry.snapshot("p", 0.5).served == 10

    def test_bin_none_ignored(self):
        telemetry = ServingTelemetry()
        telemetry.record("p", None, ok=False)
        assert telemetry.snapshots() == []

    def test_enumeration(self):
        telemetry = ServingTelemetry()
        telemetry.record("b", 0.9, ok=True, accuracy=1.0)
        telemetry.record("a", 0.5, ok=True, accuracy=1.0)
        telemetry.record("a", 0.9, ok=True, accuracy=1.0)
        assert telemetry.programs() == ("a", "b")
        assert telemetry.bins_for("a") == (0.5, 0.9)
        assert len(telemetry.snapshots("a")) == 2

    def test_empty_snapshot(self):
        snap = ServingTelemetry().snapshot("ghost", 0.9)
        assert snap.samples == 0
        assert snap.mean_accuracy is None

    def test_reset_one_program(self):
        telemetry = ServingTelemetry()
        telemetry.record("a", 0.9, ok=True, accuracy=1.0)
        telemetry.record("b", 0.9, ok=True, accuracy=1.0)
        telemetry.reset("a")
        assert telemetry.programs() == ("b",)
        telemetry.reset()
        assert telemetry.programs() == ()

    def test_window_validated(self):
        with pytest.raises(ValueError):
            ServingTelemetry(window=0)


class TestDriftDetector:
    def stored(self, target, metric=higher):
        """A training-time guarantee that holds for ``target``."""
        return statistical_guarantee([target + 0.05] * 20, target,
                                     metric, 0.9)

    def test_no_drift_when_accuracy_holds(self):
        telemetry = ServingTelemetry()
        for _ in range(30):
            telemetry.record("p", 0.9, ok=True, accuracy=0.97)
        detector = DriftDetector(telemetry, min_samples=16)
        assert detector.check("p", higher,
                              {0.9: self.stored(0.9)}) == []

    def test_drift_flagged_when_accuracy_erodes(self):
        telemetry = ServingTelemetry()
        for i in range(30):
            telemetry.record("p", 0.9, ok=True,
                             accuracy=0.7 + 0.001 * (i % 5))
        detector = DriftDetector(telemetry, min_samples=16)
        events = detector.check("p", higher, {0.9: self.stored(0.9)})
        assert len(events) == 1
        event = events[0]
        assert event.target == 0.9
        assert not event.observed.holds
        assert event.stored is not None and event.stored.holds
        assert "drift" in str(event)

    def test_min_samples_gate(self):
        telemetry = ServingTelemetry()
        for _ in range(5):
            telemetry.record("p", 0.9, ok=True, accuracy=0.1)
        detector = DriftDetector(telemetry, min_samples=16)
        assert detector.check("p", higher,
                              {0.9: self.stored(0.9)}) == []

    def test_bins_without_stored_guarantee_skipped(self):
        telemetry = ServingTelemetry()
        for _ in range(30):
            telemetry.record("p", 0.9, ok=True, accuracy=0.1)
        detector = DriftDetector(telemetry, min_samples=16)
        assert detector.check("p", higher, {}) == []

    def test_lower_is_better_direction(self):
        # Bin-packing style: target 1.1, observed ratios creep *up*.
        telemetry = ServingTelemetry()
        for i in range(30):
            telemetry.record("p", 1.1, ok=True,
                             accuracy=1.3 + 0.001 * (i % 3))
        stored = statistical_guarantee([1.05] * 20, 1.1, lower, 0.9)
        detector = DriftDetector(telemetry, min_samples=16)
        events = detector.check("p", lower, {1.1: stored})
        assert len(events) == 1

    def test_min_samples_validated(self):
        with pytest.raises(ValueError):
            DriftDetector(ServingTelemetry(), min_samples=1)
