"""Smoke tests for the example scripts.

Each example is imported (not executed: ``__main__`` guards keep the
multi-second training runs out of CI) so syntax errors, missing
imports, and API drift in the examples fail the test suite.  The
examples' full runs are exercised manually / in the benchmark docs.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    names = {path.name for path in EXAMPLES}
    assert {"quickstart.py", "binpacking_library.py",
            "multigrid_poisson.py", "image_compression.py",
            "signal_scaling.py", "poisson_manual_vs_dsl.py"} <= names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_cleanly(path):
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert hasattr(module, "main"), \
        f"example {path.name} must define main()"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_has_module_docstring(path):
    first_line = path.read_text().lstrip().splitlines()[0]
    assert first_line.startswith('"""'), \
        f"example {path.name} must document itself"
