"""Classic setup.py kept for offline environments without the ``wheel``
package, where ``pip install -e .`` cannot build a PEP 660 editable
wheel.  ``python setup.py develop`` installs an egg-link instead.
Configuration lives in pyproject.toml; this file only mirrors it.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "networkx"],
)
