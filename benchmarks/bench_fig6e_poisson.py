"""Figure 6(e): 2-D Poisson speedups per accuracy level and input size.

Paper: 1.3x to 34.6x between accuracy 10^1 and 10^9.  The reproduction
checks that relaxing the accuracy requirement buys a monotone speedup
that grows with input size.
"""

from conftest import run_once

from repro.experiments.figure6 import run_figure6


def test_fig6e_poisson(benchmark, experiment_settings):
    result = run_once(benchmark,
                      lambda: run_figure6("fig6e", experiment_settings))
    print()
    print(result.render())

    n = result.sizes[-1]
    loosest = result.bins[0]
    speedup = result.speedup(loosest, n)
    assert speedup == speedup, "loosest Poisson bin must be tuned"
    assert speedup > 1.0, "relaxed accuracy must buy time on Poisson"
