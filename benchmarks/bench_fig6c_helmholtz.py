"""Figure 6(c): 3-D Helmholtz speedups per accuracy level and size.

Paper: speedups from 1.3x to ~30x between accuracy 10^1 and 10^9 —
low accuracy needs only the estimation phase / few cycles, high
accuracy needs deep cycles with many relaxations.
"""

from conftest import run_once

from repro.experiments.figure6 import run_figure6


def test_fig6c_helmholtz(benchmark, experiment_settings):
    result = run_once(benchmark,
                      lambda: run_figure6("fig6c", experiment_settings))
    print()
    print(result.render())

    n = result.sizes[-1]
    loosest = result.bins[0]
    speedup = result.speedup(loosest, n)
    assert speedup == speedup, "loosest Helmholtz bin must be tuned"
    assert speedup >= 1.0
