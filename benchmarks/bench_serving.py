"""Serving-engine throughput across backends and batch sizes.

Tune the Poisson benchmark once (scaled down), package it as a tuned
artifact, and serve the same mixed-accuracy request batch through a
``ServingEngine`` on every execution backend at several batch sizes.
For each (backend, batch size) cell the benchmark prints one
machine-readable line::

    BENCH_JSON {"bench": "serving", "backend": "thread", ...}

so CI logs double as a throughput time series.  Correctness rides
along: every cell must return bin choices and outputs identical to the
serial reference, so a serving-path regression (wrong bin, wrong
output, dropped response) fails the smoke run immediately.

Smoke-sized by default; set ``REPRO_BENCH_FULL=1`` for the full sweep.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from conftest import FULL, run_once

from repro.autotuner import Autotuner, ProgramTestHarness, TunerSettings
from repro.runtime.backends import (
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
)
from repro.runtime.policy import SheddingPolicy
from repro.serving import (
    FrontDoor,
    ServeRequest,
    ServingEngine,
    ServingTelemetry,
    TunedArtifact,
    latency_summary,
)
from repro.suite import get_benchmark

WORKERS = max(2, min(4, os.cpu_count() or 1))
REQUEST_COUNT = 120 if FULL else 36
BATCH_SIZES = (8, 32, 128) if FULL else (8, 32)
SERVE_N = 7.0
TUNE_SETTINGS = TunerSettings(input_sizes=(7.0,), rounds_per_size=1,
                              mutation_attempts=4, min_trials=2,
                              max_trials=4, seed=13, initial_random=1,
                              guided_max_evaluations=6,
                              accuracy_confidence=None)

BACKENDS = {
    "serial": lambda: SerialBackend(),
    "thread": lambda: ThreadPoolBackend(max_workers=WORKERS),
    "process": lambda: ProcessPoolBackend(max_workers=WORKERS),
}


def _tuned_via_artifact():
    """Tune once, then round-trip through the artifact format — the
    serving benchmark measures what deployments actually load."""
    spec = get_benchmark("poisson")
    program, _ = spec.compile()
    with ProgramTestHarness(program, spec.generate, base_seed=5,
                            cost_limit=spec.cost_limit) as harness:
        result = Autotuner(program, harness, TUNE_SETTINGS).tune()
    artifact = TunedArtifact.from_json(result.to_artifact().to_json())
    return artifact.resolve()


def _mixed_requests():
    spec = get_benchmark("poisson")
    accuracies = [1.0, 3.0, 5.0, None, 2.0, 9.99]
    requests = []
    for i in range(REQUEST_COUNT):
        rng = np.random.default_rng(2000 + i)
        requests.append(ServeRequest(
            program="poisson",
            inputs=spec.generate(int(SERVE_N), rng), n=SERVE_N,
            accuracy=accuracies[i % len(accuracies)],
            verify=(i % 4 == 0), seed=i % 3))
    return requests


def test_serving_throughput(benchmark):
    tuned = _tuned_via_artifact()
    requests = _mixed_requests()

    def run():
        rows = []
        reference = None
        for backend_name, factory in BACKENDS.items():
            for batch_size in BATCH_SIZES:
                with ServingEngine(backend=factory(),
                                   batch_size=batch_size) as engine:
                    engine.register("poisson", tuned)
                    engine.serve(requests[:2])  # warm worker pools
                    engine.reset_stats()
                    start = time.perf_counter()
                    responses = engine.serve(requests)
                    elapsed = time.perf_counter() - start
                    stats = engine.stats()
                key = [(r.ok, r.bin_target, r.escalations,
                        repr(r.outputs) if r.ok else None)
                       for r in responses]
                if reference is None:
                    reference = key
                assert key == reference, \
                    f"{backend_name}/batch={batch_size} diverged " \
                    f"from the serial reference"
                assert stats.requests == len(requests)
                assert stats.fallbacks > 0  # the 9.99 requests
                rows.append({
                    "bench": "serving",
                    "program": "poisson",
                    "backend": backend_name,
                    "batch_size": batch_size,
                    "requests": len(requests),
                    "throughput_rps": round(len(requests) / elapsed, 2),
                    "escalations": stats.escalations,
                    "fallbacks": stats.fallbacks,
                    "errors": stats.errors,
                    "p50_latency_ms": round(stats.p50_latency * 1e3, 3),
                    "p95_latency_ms": round(stats.p95_latency * 1e3, 3),
                })
        return rows

    rows = run_once(benchmark, run)
    print(f"\nServing {REQUEST_COUNT} mixed-accuracy Poisson requests "
          f"at n={SERVE_N:g} ({os.cpu_count()} cpus):")
    for row in rows:
        print(f"  {row['backend']:>8}/batch={row['batch_size']:<4} "
              f"{row['throughput_rps']:8.1f} req/s  "
              f"p95 {row['p95_latency_ms']:.2f}ms")
        print("BENCH_JSON " + json.dumps(row, sort_keys=True))
    assert all(row["throughput_rps"] > 0 for row in rows)


# ----------------------------------------------------------------------
# Front-door step load: baseline stream -> sharded tier -> overload
# ----------------------------------------------------------------------
def _summary_ms(values):
    p50, p95, p99 = latency_summary(values)
    return (round(p50 * 1e3, 3), round(p95 * 1e3, 3),
            round(p99 * 1e3, 3))


def _simulate_overloaded_stream(latencies, offered_rps):
    """Sojourn-time p95 of a single serve_one worker at an offered
    arrival rate: requests arrive on a fixed cadence and queue behind
    the one in service — the unsharded engine under open-loop load,
    without needing a second experiment."""
    busy = 0.0
    sojourns = []
    for index, latency in enumerate(latencies):
        arrival = index / offered_rps
        busy = max(busy, arrival) + latency
        sojourns.append(busy - arrival)
    return latency_summary(sojourns)[1]


def _step_load(tuned, requests):
    """The four step-load phases; returns one BENCH_JSON row each.

    1. **baseline**: one engine, one request at a time — the per-
       request stream an unsharded deployment actually sees;
    2. **sharded**: the same stream dumped through the front door,
       whose micro-batching coalesces it into stacked executions;
    3. **overload**: open-loop traffic at 2x the baseline's measured
       capacity with a deadline — the front door must keep serving
       (degraded bins allowed, refusals accounted) while the
       simulated unsharded queue blows far past the deadline;
    4. **forced shed**: a deliberately tight p95 budget drives the
       admission controller's shed level up, routing traffic to
       cheaper bins — degraded-but-served, never silently dropped.
    """
    count = len(requests)
    rows = []

    # -- Phase 1: unsharded serve_one stream --------------------------
    with ServingEngine() as engine:
        engine.register("poisson", tuned)
        engine.serve(requests[:2])  # warm caches outside the clock
        engine.reset_stats()
        latencies = []
        start = time.perf_counter()
        for request in requests:
            t0 = time.perf_counter()
            engine.serve_one(request)
            latencies.append(time.perf_counter() - t0)
        elapsed = time.perf_counter() - start
    single_rps = count / elapsed
    p50, p95, p99 = _summary_ms(latencies)
    single_p95 = p95 / 1e3
    rows.append({"bench": "frontdoor", "phase": "baseline_serve_one",
                 "shards": 1, "requests": count,
                 "throughput_rps": round(single_rps, 2),
                 "p50_latency_ms": p50, "p95_latency_ms": p95,
                 "p99_latency_ms": p99, "degraded": 0, "rejected": 0,
                 "expired": 0})

    # -- Phase 2: the same stream through the sharded tier ------------
    with FrontDoor.build("async:2x1", shard_backend="serial",
                         shedding=None) as door:
        door.register("poisson", tuned)
        start = time.perf_counter()
        responses = door.serve(requests)
        elapsed = time.perf_counter() - start
        stats = door.stats()
    sharded_rps = count / elapsed
    assert stats.completed == count
    assert sum(r.ok for r in responses) \
        == sum(s.served for s in stats.shard_stats)
    sharded_p95 = stats.p95_latency
    rows.append({"bench": "frontdoor", "phase": "sharded_dump",
                 "shards": stats.shards, "requests": count,
                 "throughput_rps": round(sharded_rps, 2),
                 "p50_latency_ms": round(stats.p50_latency * 1e3, 3),
                 "p95_latency_ms": round(sharded_p95 * 1e3, 3),
                 "p99_latency_ms": round(stats.p99_latency * 1e3, 3),
                 "stacked_calls": stats.stacked_calls,
                 "stacked_requests": stats.stacked_requests,
                 "degraded": 0, "rejected": 0, "expired": 0})

    # The tentpole claim: >= 2x the unsharded stream's requests/sec at
    # an equal-or-better p95 (micro-batching into stacked kernels does
    # the heavy lifting; shards add headroom on multi-core hosts).
    assert sharded_rps >= 2 * single_rps, \
        f"front door {sharded_rps:.1f} req/s < 2x single-engine " \
        f"{single_rps:.1f} req/s"
    assert sharded_p95 <= single_p95, \
        f"front door p95 {sharded_p95:.4f}s worse than single-engine " \
        f"{single_p95:.4f}s"

    # -- Phase 3: open-loop overload at 2x baseline capacity ----------
    offered_rps = 2 * single_rps
    deadline = max(0.3, 4 * single_p95)
    unsharded_p95 = _simulate_overloaded_stream(latencies, offered_rps)
    assert unsharded_p95 > deadline, \
        f"overload too gentle: simulated unsharded p95 " \
        f"{unsharded_p95:.2f}s within deadline {deadline:.2f}s"
    with FrontDoor.build("async:2x1", shard_backend="serial",
                         deadline=deadline,
                         shedding=SheddingPolicy(p95_budget=deadline)
                         ) as door:
        door.register("poisson", tuned)
        futures = []
        start = time.perf_counter()
        for index, request in enumerate(requests):
            pause = start + index / offered_rps - time.perf_counter()
            if pause > 0:
                time.sleep(pause)
            futures.append(door.submit(request))
        responses = [future.result(60.0) for future in futures]
        elapsed = time.perf_counter() - start
        stats = door.stats()
    assert stats.submitted == count
    assert stats.completed + stats.rejected + stats.expired == count
    served_fraction = stats.completed / count
    refused = [r for r in responses if r.error is not None
               and ("deadline expired" in r.error
                    or "rejected" in r.error)]
    assert len(refused) == stats.rejected + stats.expired
    assert served_fraction >= 0.95, \
        f"front door served {served_fraction:.1%} under 2x overload"
    rows.append({"bench": "frontdoor", "phase": "overload_2x",
                 "shards": stats.shards, "requests": count,
                 "offered_rps": round(offered_rps, 2),
                 "throughput_rps": round(count / elapsed, 2),
                 "served_fraction": round(served_fraction, 4),
                 "p50_latency_ms": round(stats.p50_latency * 1e3, 3),
                 "p95_latency_ms": round(stats.p95_latency * 1e3, 3),
                 "p99_latency_ms": round(stats.p99_latency * 1e3, 3),
                 "deadline_ms": round(deadline * 1e3, 1),
                 "unsharded_sim_p95_ms": round(unsharded_p95 * 1e3, 1),
                 "degraded": stats.degraded, "rejected": stats.rejected,
                 "expired": stats.expired,
                 "shed_level": stats.shed_level})

    # -- Phase 4: force the shed controller with a tight p95 budget ---
    telemetry = ServingTelemetry()
    shed_policy = SheddingPolicy(p95_budget=single_p95 / 4)
    with FrontDoor.build("async:2x1", shard_backend="serial",
                         shedding=shed_policy,
                         telemetry=telemetry) as door:
        door.register("poisson", tuned)
        # Closed loop: the first completion primes the controller's
        # latency window, every later admission sees p95 over budget.
        for request in requests:
            door.submit(request).result(60.0)
        stats = door.stats()
    snapshot = telemetry.shedding("poisson")
    assert stats.completed == count
    assert stats.degraded > 0, "tight p95 budget never shed accuracy"
    assert snapshot.degraded == stats.degraded
    rows.append({"bench": "frontdoor", "phase": "forced_shed",
                 "shards": stats.shards, "requests": count,
                 "p50_latency_ms": round(stats.p50_latency * 1e3, 3),
                 "p95_latency_ms": round(stats.p95_latency * 1e3, 3),
                 "p99_latency_ms": round(stats.p99_latency * 1e3, 3),
                 "degraded": stats.degraded,
                 "degrade_steps": stats.degrade_steps,
                 "shed_level": stats.shed_level,
                 "rejected": stats.rejected, "expired": stats.expired})
    return rows


def test_frontdoor_step_load(benchmark):
    """Step-load the sharded front door against the serve_one stream
    (see :func:`_step_load` for the phases and claims)."""
    tuned = _tuned_via_artifact()
    requests = _mixed_requests()
    rows = run_once(benchmark, lambda: _step_load(tuned, requests))
    print(f"\nFront-door step load ({len(requests)} Poisson requests, "
          f"{os.cpu_count()} cpus):")
    for row in rows:
        rate = row.get("throughput_rps", "-")
        print(f"  {row['phase']:>20} {rate!s:>9} req/s  "
              f"p95 {row['p95_latency_ms']:.2f}ms  "
              f"degraded {row['degraded']} rejected {row['rejected']} "
              f"expired {row['expired']}")
        print("BENCH_JSON " + json.dumps(row, sort_keys=True))
