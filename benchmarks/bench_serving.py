"""Serving-engine throughput across backends and batch sizes.

Tune the Poisson benchmark once (scaled down), package it as a tuned
artifact, and serve the same mixed-accuracy request batch through a
``ServingEngine`` on every execution backend at several batch sizes.
For each (backend, batch size) cell the benchmark prints one
machine-readable line::

    BENCH_JSON {"bench": "serving", "backend": "thread", ...}

so CI logs double as a throughput time series.  Correctness rides
along: every cell must return bin choices and outputs identical to the
serial reference, so a serving-path regression (wrong bin, wrong
output, dropped response) fails the smoke run immediately.

Smoke-sized by default; set ``REPRO_BENCH_FULL=1`` for the full sweep.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from conftest import FULL, run_once

from repro.autotuner import Autotuner, ProgramTestHarness, TunerSettings
from repro.runtime.backends import (
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
)
from repro.serving import ServeRequest, ServingEngine, TunedArtifact
from repro.suite import get_benchmark

WORKERS = max(2, min(4, os.cpu_count() or 1))
REQUEST_COUNT = 120 if FULL else 36
BATCH_SIZES = (8, 32, 128) if FULL else (8, 32)
SERVE_N = 7.0
TUNE_SETTINGS = TunerSettings(input_sizes=(7.0,), rounds_per_size=1,
                              mutation_attempts=4, min_trials=2,
                              max_trials=4, seed=13, initial_random=1,
                              guided_max_evaluations=6,
                              accuracy_confidence=None)

BACKENDS = {
    "serial": lambda: SerialBackend(),
    "thread": lambda: ThreadPoolBackend(max_workers=WORKERS),
    "process": lambda: ProcessPoolBackend(max_workers=WORKERS),
}


def _tuned_via_artifact():
    """Tune once, then round-trip through the artifact format — the
    serving benchmark measures what deployments actually load."""
    spec = get_benchmark("poisson")
    program, _ = spec.compile()
    with ProgramTestHarness(program, spec.generate, base_seed=5,
                            cost_limit=spec.cost_limit) as harness:
        result = Autotuner(program, harness, TUNE_SETTINGS).tune()
    artifact = TunedArtifact.from_json(result.to_artifact().to_json())
    return artifact.resolve()


def _mixed_requests():
    spec = get_benchmark("poisson")
    accuracies = [1.0, 3.0, 5.0, None, 2.0, 9.99]
    requests = []
    for i in range(REQUEST_COUNT):
        rng = np.random.default_rng(2000 + i)
        requests.append(ServeRequest(
            program="poisson",
            inputs=spec.generate(int(SERVE_N), rng), n=SERVE_N,
            accuracy=accuracies[i % len(accuracies)],
            verify=(i % 4 == 0), seed=i % 3))
    return requests


def test_serving_throughput(benchmark):
    tuned = _tuned_via_artifact()
    requests = _mixed_requests()

    def run():
        rows = []
        reference = None
        for backend_name, factory in BACKENDS.items():
            for batch_size in BATCH_SIZES:
                with ServingEngine(backend=factory(),
                                   batch_size=batch_size) as engine:
                    engine.register("poisson", tuned)
                    engine.serve(requests[:2])  # warm worker pools
                    engine.reset_stats()
                    start = time.perf_counter()
                    responses = engine.serve(requests)
                    elapsed = time.perf_counter() - start
                    stats = engine.stats()
                key = [(r.ok, r.bin_target, r.escalations,
                        repr(r.outputs) if r.ok else None)
                       for r in responses]
                if reference is None:
                    reference = key
                assert key == reference, \
                    f"{backend_name}/batch={batch_size} diverged " \
                    f"from the serial reference"
                assert stats.requests == len(requests)
                assert stats.fallbacks > 0  # the 9.99 requests
                rows.append({
                    "bench": "serving",
                    "program": "poisson",
                    "backend": backend_name,
                    "batch_size": batch_size,
                    "requests": len(requests),
                    "throughput_rps": round(len(requests) / elapsed, 2),
                    "escalations": stats.escalations,
                    "fallbacks": stats.fallbacks,
                    "errors": stats.errors,
                    "p50_latency_ms": round(stats.p50_latency * 1e3, 3),
                    "p95_latency_ms": round(stats.p95_latency * 1e3, 3),
                })
        return rows

    rows = run_once(benchmark, run)
    print(f"\nServing {REQUEST_COUNT} mixed-accuracy Poisson requests "
          f"at n={SERVE_N:g} ({os.cpu_count()} cpus):")
    for row in rows:
        print(f"  {row['backend']:>8}/batch={row['batch_size']:<4} "
              f"{row['throughput_rps']:8.1f} req/s  "
              f"p95 {row['p95_latency_ms']:.2f}ms")
        print("BENCH_JSON " + json.dumps(row, sort_keys=True))
    assert all(row["throughput_rps"] > 0 for row in rows)
