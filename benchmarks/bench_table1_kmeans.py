"""Table 1: algorithm selection for autotuned k-means.

Paper (n=2048, k_opt=45):

    accuracy 0.10 -> k=4,  random,    once
    accuracy 0.20 -> k=38, k-means++, 25% stabilize
    accuracy 0.50 -> k=43, k-means++, once
    accuracy 0.75 -> k=45, k-means++, once
    accuracy 0.95 -> k=46, k-means++, 100% stabilize

Reproduced shape (see EXPERIMENTS.md for the exact rows measured): the
chosen k grows with the accuracy bin, the lowest bin settles for cheap
random seeding while k-means++ takes over at higher bins, and light
iteration modes appear at low accuracy.
"""

from conftest import run_once

from repro.experiments.table1 import run_table1


def test_table1_kmeans_choices(benchmark, experiment_settings):
    result = run_once(benchmark, lambda: run_table1(experiment_settings))
    print()
    print(result.render())

    assert result.rows, "at least one accuracy bin must be tuned"
    ks = [k for _, k, _, _ in result.rows]
    # k grows (weakly) with the accuracy bin.
    assert ks == sorted(ks)
    # Every selected k stays sane: positive and at most n.
    assert all(1 <= k <= result.n for k in ks)
