"""Shared settings for the benchmark harness.

Every ``bench_fig*`` / ``bench_table*`` file regenerates one table or
figure of the paper.  By default the harness runs in a scaled-down mode
sized for CI; set ``REPRO_BENCH_FULL=1`` for the full sweeps (several
minutes per figure).  Results are printed so ``pytest benchmarks/
--benchmark-only -s`` shows the regenerated rows/series next to the
timings.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import ExperimentSettings

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"


@pytest.fixture(scope="session")
def experiment_settings() -> ExperimentSettings:
    if FULL:
        return ExperimentSettings(seed=3, quick=False)
    return ExperimentSettings(seed=3, quick=True, min_trials=1,
                              max_trials=3, evaluation_trials=2)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1,
                              warmup_rounds=0)
