"""Micro-benchmarks of the substrate kernels (pytest-benchmark proper).

These are conventional repeated-timing benchmarks of the hot kernels
every experiment rests on; they catch performance regressions in the
substrate rather than reproducing a specific paper figure.
"""

import numpy as np
import pytest

from repro.binpacking.algorithms import first_fit_decreasing, next_fit
from repro.binpacking.datagen import generate_items_with_known_optimal
from repro.clustering.kernels import assign_clusters
from repro.linalg.banded import banded_cholesky_factor, banded_cholesky_solve
from repro.linalg.householder import tridiagonalize_symmetric
from repro.linalg.poisson_ops import poisson_2d_banded
from repro.linalg.tridiag_qr import tridiagonal_eigen_qr
from repro.multigrid.grids import prolong, restrict_full_weighting
from repro.multigrid.relax import sor_poisson_2d


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


def test_kernel_next_fit(benchmark, rng):
    items, _ = generate_items_with_known_optimal(4096, rng)
    benchmark(next_fit, items)


def test_kernel_first_fit_decreasing(benchmark, rng):
    items, _ = generate_items_with_known_optimal(2048, rng)
    benchmark(first_fit_decreasing, items)


def test_kernel_assign_clusters(benchmark, rng):
    points = rng.normal(size=(2048, 2))
    centroids = rng.normal(size=(64, 2))
    benchmark(assign_clusters, points, centroids)


def test_kernel_sor_sweeps(benchmark, rng):
    n = 63
    u = np.zeros((n, n))
    f = rng.normal(size=(n, n))
    benchmark(sor_poisson_2d, u, f, 1.0 / (n + 1), 1.5, 10)


def test_kernel_grid_transfers(benchmark, rng):
    fine = rng.normal(size=(63, 63))

    def transfer():
        coarse, _ = restrict_full_weighting(fine)
        prolong(coarse)

    benchmark(transfer)


def test_kernel_banded_cholesky(benchmark):
    n = 15
    band = poisson_2d_banded(n, 1.0 / (n + 1))
    b = np.arange(float(n * n))

    def solve():
        factor, _ = banded_cholesky_factor(band)
        banded_cholesky_solve(factor, b)

    benchmark(solve)


def test_kernel_tridiagonal_eigensolver(benchmark, rng):
    a = rng.normal(size=(48, 48))
    a = a + a.T
    d, e, q, _ = tridiagonalize_symmetric(a)
    benchmark(tridiagonal_eigen_qr, d, e, q)
