"""Micro-benchmarks of the substrate kernels (pytest-benchmark proper).

These are conventional repeated-timing benchmarks of the hot kernels
every experiment rests on; they catch performance regressions in the
substrate rather than reproducing a specific paper figure.

The ``TestBatchedThroughput`` section is the throughput gate for the
stacked-kernel substrate: each test times a batched ``(B, …)`` call
against looping the scalar kernel over slices, prints a ``BENCH_JSON``
row (collected into CI's ``bench_results.jsonl`` artifact), and
*fails* if stacking is slower than the loop — with a hard ≥3x floor on
the headline SOR and cluster-assignment kernels.
"""

import json
import time

import numpy as np
import pytest

from repro.binpacking.algorithms import first_fit_decreasing, next_fit
from repro.binpacking.datagen import generate_items_with_known_optimal
from repro.clustering.kernels import assign_clusters
from repro.linalg.banded import banded_cholesky_factor, banded_cholesky_solve
from repro.linalg.cg import conjugate_gradient
from repro.linalg.householder import tridiagonalize_symmetric
from repro.linalg.poisson_ops import (
    apply_laplacian_1d,
    apply_laplacian_2d,
    poisson_2d_banded,
)
from repro.linalg.tridiag_qr import tridiagonal_eigen_qr
from repro.multigrid.grids import (
    coarse_size,
    is_grid_size,
    prolong,
    restrict_full_weighting,
)
from repro.multigrid.relax import sor_poisson_2d


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


def _vcycle(u, f, n, h):
    """One full multigrid V-cycle from the batched kernels (2 pre- and
    post-relaxations per level); accepts stacked ``(B, n, n)`` inputs."""
    u, _ = sor_poisson_2d(u, f, h, 1.5, 2)
    if n >= 3 and is_grid_size(n):
        nc = coarse_size(n)
        residual = f - apply_laplacian_2d(u, h)
        coarse_f, _ = restrict_full_weighting(residual, core_ndim=2)
        correction = _vcycle(np.zeros_like(coarse_f), coarse_f, nc,
                             1.0 / (nc + 1))
        fine_correction, _ = prolong(correction, core_ndim=2)
        u = u + fine_correction
    u, _ = sor_poisson_2d(u, f, h, 1.5, 2)
    return u


def test_kernel_next_fit(benchmark, rng):
    items, _ = generate_items_with_known_optimal(4096, rng)
    benchmark(next_fit, items)


def test_kernel_first_fit_decreasing(benchmark, rng):
    items, _ = generate_items_with_known_optimal(2048, rng)
    benchmark(first_fit_decreasing, items)


def test_kernel_assign_clusters(benchmark, rng):
    points = rng.normal(size=(2048, 2))
    centroids = rng.normal(size=(64, 2))
    benchmark(assign_clusters, points, centroids)


def test_kernel_sor_sweeps(benchmark, rng):
    n = 63
    u = np.zeros((n, n))
    f = rng.normal(size=(n, n))
    benchmark(sor_poisson_2d, u, f, 1.0 / (n + 1), 1.5, 10)


def test_kernel_grid_transfers(benchmark, rng):
    fine = rng.normal(size=(63, 63))

    def transfer():
        coarse, _ = restrict_full_weighting(fine)
        prolong(coarse)

    benchmark(transfer)


def test_kernel_banded_cholesky(benchmark):
    n = 15
    band = poisson_2d_banded(n, 1.0 / (n + 1))
    b = np.arange(float(n * n))

    def solve():
        factor, _ = banded_cholesky_factor(band)
        banded_cholesky_solve(factor, b)

    benchmark(solve)


def test_kernel_tridiagonal_eigensolver(benchmark, rng):
    a = rng.normal(size=(48, 48))
    a = a + a.T
    d, e, q, _ = tridiagonalize_symmetric(a)
    benchmark(tridiagonal_eigen_qr, d, e, q)


def test_kernel_conjugate_gradient(benchmark, rng):
    n = 511
    b = rng.normal(size=n)
    benchmark(conjugate_gradient, lambda x: apply_laplacian_1d(x, 1.0),
              b, iterations=50, operator_cost=5.0 * n, tolerance=1e-10)


def test_kernel_multigrid_vcycle(benchmark, rng):
    n = 63
    f = rng.normal(size=(n, n))
    benchmark(_vcycle, np.zeros((n, n)), f, n, 1.0 / (n + 1))


# ----------------------------------------------------------------------
# Batched-vs-looped throughput gate
# ----------------------------------------------------------------------
BATCH = 32

#: Kernels that MUST beat the per-slice loop by this factor at B=32
#: (the ISSUE's headline targets); every other gated kernel only has
#: to not lose to the loop.
HARD_FLOORS = {"sor_poisson_2d": 3.0, "assign_clusters": 3.0}


def _best_seconds(fn, repeats=9):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _gate(kernel: str, stacked_fn, looped_fn, **extra):
    """Time both variants, emit BENCH_JSON, enforce the throughput gate."""
    for _ in range(2):  # warm both paths (shape caches, allocator pools)
        stacked_fn()
        looped_fn()
    stacked = _best_seconds(stacked_fn)
    looped = _best_seconds(looped_fn)
    speedup = looped / stacked
    row = {"bench": "kernels", "kernel": kernel, "batch": BATCH,
           "stacked_s": round(stacked, 6), "looped_s": round(looped, 6),
           "speedup": round(speedup, 2), **extra}
    print("BENCH_JSON " + json.dumps(row, sort_keys=True))
    floor = HARD_FLOORS.get(kernel, 1.0)
    assert speedup >= floor, (
        f"{kernel}: stacked B={BATCH} ran {speedup:.2f}x the loop, "
        f"below the {floor:.1f}x gate")


class TestBatchedThroughput:
    def test_batched_sor_throughput(self, rng):
        n = 63
        u = np.zeros((BATCH, n, n))
        f = rng.normal(size=(BATCH, n, n))
        h = 1.0 / (n + 1)
        _gate(
            "sor_poisson_2d",
            lambda: sor_poisson_2d(u, f, h, 1.5, 10),
            lambda: [sor_poisson_2d(u[i], f[i], h, 1.5, 10)
                     for i in range(BATCH)],
            n=n)

    def test_batched_assign_clusters_throughput(self, rng):
        points = rng.normal(size=(BATCH, 64, 2))
        centroids = rng.normal(size=(BATCH, 8, 2))
        _gate(
            "assign_clusters",
            lambda: assign_clusters(points, centroids),
            lambda: [assign_clusters(points[i], centroids[i])
                     for i in range(BATCH)],
            points=64, k=8)

    def test_batched_grid_transfers_throughput(self, rng):
        fine = rng.normal(size=(BATCH, 63, 63))

        def stacked():
            coarse, _ = restrict_full_weighting(fine, core_ndim=2)
            prolong(coarse, core_ndim=2)

        def looped():
            for i in range(BATCH):
                coarse, _ = restrict_full_weighting(fine[i])
                prolong(coarse)

        _gate("grid_transfers", stacked, looped, n=63)

    def test_batched_conjugate_gradient_throughput(self, rng):
        n = 255
        b = rng.normal(size=(BATCH, n))

        def operator(x):
            return apply_laplacian_1d(x, 1.0)

        _gate(
            "conjugate_gradient",
            lambda: conjugate_gradient(operator, b, iterations=25,
                                       operator_cost=5.0 * n),
            lambda: [conjugate_gradient(operator, b[i], iterations=25,
                                        operator_cost=5.0 * n)
                     for i in range(BATCH)],
            n=n)

    def test_batched_banded_solve_throughput(self, rng):
        n = 15
        factor, _ = banded_cholesky_factor(poisson_2d_banded(n,
                                                             1.0 / (n + 1)))
        rhs = rng.normal(size=(BATCH, n * n))
        _gate(
            "banded_cholesky_solve",
            lambda: banded_cholesky_solve(factor, rhs),
            lambda: [banded_cholesky_solve(factor, rhs[i])
                     for i in range(BATCH)],
            n=n)

    def test_batched_vcycle_throughput(self, rng):
        n = 63
        f = rng.normal(size=(BATCH, n, n))
        zero = np.zeros((BATCH, n, n))
        h = 1.0 / (n + 1)
        _gate(
            "multigrid_vcycle",
            lambda: _vcycle(zero, f, n, h),
            lambda: [_vcycle(zero[i], f[i], n, h)
                     for i in range(BATCH)],
            n=n)


# ----------------------------------------------------------------------
# float32-vs-float64 throughput gate
# ----------------------------------------------------------------------
#: Batched float32 SOR must beat float64 by this factor at B=32 — the
#: memory-bandwidth payoff the ``precision()`` tunable is priced on
#: (half the bytes per sweep on a bandwidth-bound kernel).
PRECISION_FLOOR = 1.3


class TestPrecisionThroughput:
    def test_batched_float32_sor_beats_float64(self, rng):
        n = 127
        f64 = rng.normal(size=(BATCH, n, n))
        f32 = f64.astype(np.float32)
        u64 = np.zeros_like(f64)
        u32 = np.zeros_like(f32)
        h = 1.0 / (n + 1)

        def run64():
            sor_poisson_2d(u64, f64, h, 1.5, 10)

        def run32():
            sor_poisson_2d(u32, f32, h, 1.5, 10)

        for _ in range(2):  # warm both paths
            run64()
            run32()
        float64_s = _best_seconds(run64)
        float32_s = _best_seconds(run32)
        speedup = float64_s / float32_s
        out, _ = sor_poisson_2d(u32, f32, h, 1.5, 1)
        assert out.dtype == np.float32  # the kernel preserves dtype
        row = {"bench": "kernels", "kernel": "sor_poisson_2d_float32",
               "batch": BATCH, "n": n,
               "float64_s": round(float64_s, 6),
               "float32_s": round(float32_s, 6),
               "speedup": round(speedup, 2)}
        print("BENCH_JSON " + json.dumps(row, sort_keys=True))
        assert speedup >= PRECISION_FLOOR, (
            f"batched float32 SOR ran {speedup:.2f}x float64 at "
            f"B={BATCH}, below the {PRECISION_FLOOR:.1f}x gate")
