"""Figure 6(d): Image Compression speedups per accuracy level and size.

Paper: 1.3x to ~30x — low log-scale RMS targets admit small rank k
(and the bisection path that computes only k eigenpairs).
"""

from conftest import run_once

from repro.experiments.figure6 import run_figure6


def test_fig6d_imagecompression(benchmark, experiment_settings):
    result = run_once(benchmark,
                      lambda: run_figure6("fig6d", experiment_settings))
    print()
    print(result.render())

    n = result.sizes[-1]
    loosest = result.bins[0]
    speedup = result.speedup(loosest, n)
    if speedup == speedup:
        assert speedup >= 1.0
