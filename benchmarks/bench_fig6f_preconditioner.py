"""Figure 6(f): Preconditioner speedups per accuracy level and size.

Paper: 1.1x to 9.6x — the flattest of the six benchmarks because CG's
convergence is superlinear once it "turns the corner", so intermediate
accuracy levels cost nearly as much as tight ones.
"""

from conftest import run_once

from repro.experiments.figure6 import run_figure6


def test_fig6f_preconditioner(benchmark, experiment_settings):
    result = run_once(benchmark,
                      lambda: run_figure6("fig6f", experiment_settings))
    print()
    print(result.render())

    n = result.sizes[-1]
    loosest = result.bins[0]
    speedup = result.speedup(loosest, n)
    assert speedup == speedup, "loosest bin must be tuned"
    assert speedup >= 1.0
