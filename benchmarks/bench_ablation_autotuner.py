"""Ablations of the autotuner's design choices (DESIGN.md index).

Four claims from Section 5 are measured on the bin packing benchmark
under identical budgets:

1. adaptive trial counts (3..25, t-test driven) vs a fixed count
   (min == max): adaptivity spends fewer trials under low noise;
2. log-normal scaling mutators vs uniform resampling (the paper
   reports "much faster convergence" for log-normal on size-like
   values);
3. guided mutation on vs off: without it accuracy targets are met
   later or not at all;
4. the results-copying optimisation reduces trials at unchanged sizes.
"""

from __future__ import annotations

import json

import numpy as np
from conftest import run_once

from repro.autotuner import Autotuner, ProgramTestHarness, TunerSettings
from repro.compiler.compile import compile_program
from repro.suite import get_benchmark

SIZES = (16.0, 64.0, 256.0)


def tune(benchmark_name="binpacking", *, noise=0.0, seed=21, **overrides):
    spec = get_benchmark(benchmark_name)
    program, _ = spec.compile()
    harness = ProgramTestHarness(program, spec.generate, base_seed=7,
                                 noise=noise,
                                 cost_limit=spec.cost_limit)
    defaults = dict(input_sizes=SIZES, rounds_per_size=2,
                    mutation_attempts=8, min_trials=3, max_trials=12,
                    seed=seed, initial_random=2,
                    accuracy_confidence=None)
    defaults.update(overrides)
    result = Autotuner(program, harness, TunerSettings(**defaults)).tune()
    return harness, result


def test_ablation_adaptive_testing(benchmark):
    def run():
        adaptive_harness, adaptive = tune()
        fixed_harness, fixed = tune(min_trials=12, max_trials=12)
        return (adaptive_harness.trials_run, fixed_harness.trials_run,
                adaptive.unmet_bins, fixed.unmet_bins)

    adaptive_trials, fixed_trials, adaptive_unmet, fixed_unmet = \
        run_once(benchmark, run)
    print(f"\nadaptive trials={adaptive_trials} (unmet {adaptive_unmet}) "
          f"vs fixed trials={fixed_trials} (unmet {fixed_unmet})")
    assert adaptive_trials < fixed_trials


def test_ablation_noise_inflates_trials(benchmark):
    """The mouse-wiggle anecdote at tuner scale."""
    def run():
        quiet_harness, _ = tune(noise=0.0)
        noisy_harness, _ = tune(noise=0.4)
        return quiet_harness.trials_run, noisy_harness.trials_run

    quiet, noisy = run_once(benchmark, run)
    print(f"\nquiet trials={quiet} noisy trials={noisy}")
    assert noisy > quiet


def test_ablation_lognormal_vs_uniform_scaling(benchmark):
    """Compare converged frontier cost under equal budgets.

    Uses the clustering benchmark, whose k accuracy variable spans
    [1, 4096] — exactly the size-like value the log-normal argument
    is about.
    """
    def run():
        _, lognormal = tune("clustering", lognormal_scaling=True)
        _, uniform = tune("clustering", lognormal_scaling=False)

        def frontier_cost(result):
            rows = result.frontier()
            return sum(cost for _, _, cost in rows) / max(len(rows), 1)

        return frontier_cost(lognormal), frontier_cost(uniform), \
            len(lognormal.best_per_bin), len(uniform.best_per_bin)

    log_cost, uni_cost, log_bins, uni_bins = run_once(benchmark, run)
    print(f"\nlognormal: mean frontier cost {log_cost:.0f} over "
          f"{log_bins} bins; uniform: {uni_cost:.0f} over {uni_bins}")
    # Both must train something; log-normal should not be worse on
    # bins covered (weak assertion: comparable or better coverage).
    assert log_bins >= uni_bins


def test_ablation_guided_mutation(benchmark):
    """Guided mutation rescues unmet accuracy targets (Poisson)."""
    def run():
        _, with_guided = tune("poisson", use_guided_mutation=True,
                              input_sizes=(3.0, 7.0, 15.0),
                              mutation_attempts=4, min_trials=1,
                              max_trials=3)
        _, without = tune("poisson", use_guided_mutation=False,
                          input_sizes=(3.0, 7.0, 15.0),
                          mutation_attempts=4, min_trials=1,
                          max_trials=3)
        return with_guided.unmet_bins, without.unmet_bins

    with_unmet, without_unmet = run_once(benchmark, run)
    print(f"\nguided on: unmet {with_unmet}; guided off: unmet "
          f"{without_unmet}")
    assert len(with_unmet) <= len(without_unmet)


def test_ablation_root_mutator_preference(benchmark):
    """This repo's search refinement (EXPERIMENTS.md note 3).

    Weighting mutator selection toward the root instance's parameters
    should cover at least as many accuracy bins of the recursive
    Poisson benchmark as uniform selection, at the same budget.
    """
    def run():
        _, preferred = tune("poisson", prefer_root_mutators=True,
                            input_sizes=(3.0, 7.0, 15.0),
                            mutation_attempts=6, min_trials=1,
                            max_trials=3)
        _, uniform = tune("poisson", prefer_root_mutators=False,
                          input_sizes=(3.0, 7.0, 15.0),
                          mutation_attempts=6, min_trials=1,
                          max_trials=3)
        return (len(preferred.best_per_bin), len(uniform.best_per_bin),
                preferred.trials_run, uniform.trials_run)

    preferred_bins, uniform_bins, preferred_trials, uniform_trials = \
        run_once(benchmark, run)
    print(f"\npreferred: {preferred_bins} bins ({preferred_trials} "
          f"trials); uniform: {uniform_bins} bins ({uniform_trials} "
          f"trials)")
    assert preferred_bins >= uniform_bins


def test_ablation_mixed_precision_frontier(benchmark):
    """The precision() dimension pays its way.

    Tuning the preconditioner benchmark over {float64, float32}
    discovers per-bin configurations that meet the same statistical
    accuracy guarantees (Section 3.3, 95% one-sided bound) at lower
    cost than the best configurations a float64-only space can reach
    under an identical budget — float32 halves the charged cost per CG
    iteration while its ~7 resolvable orders cover every declared bin.
    """

    def tune_precision(choices):
        spec = get_benchmark("preconditioner")
        program, _ = compile_program(
            *spec.build(precision_choices=choices))
        harness = ProgramTestHarness(program, spec.generate, base_seed=7,
                                     cost_limit=spec.cost_limit)
        settings = TunerSettings(input_sizes=(64.0, 256.0),
                                 rounds_per_size=2, mutation_attempts=12,
                                 min_trials=3, max_trials=12, seed=21,
                                 initial_random=4,
                                 accuracy_confidence=None)
        return Autotuner(program, harness, settings).tune()

    def run():
        # Diverging float32 CG iterates overflow to inf during random
        # exploration; the tuner discards those trials, so the numpy
        # overflow warnings are expected noise.
        with np.errstate(over="ignore", invalid="ignore"):
            mixed = tune_precision(("float64", "float32"))
            control = tune_precision(("float64",))
        n = 256.0
        control_cost = {target: cost
                        for target, _, cost in control.frontier(n)}
        guarantees = mixed.bin_guarantees()
        wins = []
        for target, _, cost in mixed.frontier(n):
            candidate = mixed.best_per_bin[target]
            precision = candidate.config.lookup(
                "preconditioner@main.precision", n)
            guarantee = guarantees.get(target)
            if (precision == "float32" and target in control_cost
                    and cost < control_cost[target]
                    and guarantee is not None and guarantee.holds):
                wins.append((target, cost, control_cost[target]))
        return wins

    wins = run_once(benchmark, run)
    row = {"bench": "ablation", "ablation": "mixed_precision",
           "benchmark": "preconditioner", "bins_won": len(wins),
           "wins": [{"bin": target, "mixed_cost": mixed_cost,
                     "float64_cost": control_cost}
                    for target, mixed_cost, control_cost in wins]}
    print("\nBENCH_JSON " + json.dumps(row, sort_keys=True))
    assert wins, (
        "mixed-precision tuning found no bin where a float32 config "
        "meets the accuracy guarantee at lower cost than the best "
        "float64-only config")


def test_ablation_results_copying(benchmark):
    def run():
        on_harness, _ = tune(copy_parent_results=True)
        off_harness, _ = tune(copy_parent_results=False)
        return on_harness.trials_run, off_harness.trials_run

    on_trials, off_trials = run_once(benchmark, run)
    print(f"\ncopying on: {on_trials} trials; off: {off_trials} trials")
    assert on_trials <= off_trials
