"""Figure 8: multigrid cycle shapes of the tuned Helmholtz solver.

Paper: tuned cycle shapes vary with both input size and required
accuracy — low accuracy is served by estimation-only work, higher
accuracies add relaxations/cycles, small sizes abandon recursion for
the direct solver.  The reproduction asserts the structural facts:
cycles exist for tuned (size, bin) pairs, touch coarser levels at
large sizes, and use direct bottom solves somewhere in the grid.
"""

from conftest import run_once

from repro.experiments.figure8 import run_figure8


def test_fig8_cycle_shapes(benchmark, experiment_settings):
    result = run_once(benchmark,
                      lambda: run_figure8(experiment_settings))
    print()
    print(result.render())

    assert result.shapes, "cycle shapes must be produced"

    largest = max(n for n, _ in result.shapes)
    deep_shapes = [shape for (n, _), shape in result.shapes.items()
                   if n == largest]
    assert any(shape.depth >= 1 for shape in deep_shapes), \
        "tuned large-size configs should use the grid hierarchy"

    all_actions = set()
    for shape in result.shapes.values():
        all_actions.update(shape.counts())
    assert "relax" in all_actions or "iterative" in all_actions \
        or "direct" in all_actions
