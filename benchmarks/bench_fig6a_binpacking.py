"""Figure 6(a): Bin Packing speedups per accuracy level and input size.

Paper: speedups range from 1832x to 13789x at the largest size because
loose accuracy admits O(n) NextFit while tight accuracy needs the
decreasing-fit family (sort + O(n * bins) scans).  The reproduction
checks the *shape*: speedup at the loosest bin grows with input size
and dominates the most accurate bin by a widening factor.
"""

from conftest import run_once

from repro.experiments.figure6 import run_figure6


def test_fig6a_binpacking(benchmark, experiment_settings):
    result = run_once(benchmark,
                      lambda: run_figure6("fig6a", experiment_settings))
    print()
    print(result.render())

    loosest = result.bins[0]
    speedups = [result.speedup(loosest, n) for n in result.sizes
                if result.speedup(loosest, n) == result.speedup(loosest, n)]
    assert speedups, "loosest bin must be tuned"
    # Shape: the speedup grows with input size (asymptotic gap).
    assert speedups[-1] >= speedups[0]
    # And the largest size shows a clear win for relaxed accuracy.
    assert speedups[-1] > 1.5
