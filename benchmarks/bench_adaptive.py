"""The adaptive-serving control loop: overhead, slices, and swaps.

Three BENCH_JSON lines quantify what closing the tune→serve→observe→
retune loop costs at steady state and at transition points::

    BENCH_JSON {"bench": "adaptive", "metric": "telemetry_overhead", ...}
    BENCH_JSON {"bench": "adaptive", "metric": "retune_slice", ...}
    BENCH_JSON {"bench": "adaptive", "metric": "hot_swap", ...}

* **telemetry_overhead** — what per-response telemetry recording adds
  to the steady-state serve path, which must stay within 5%
  (observability may not tax serving).  The gate is component-based —
  the measured per-response ``record_batch`` cost over the measured
  per-request serve cost — because a raw on/off A/B of a multi-second
  serve cannot resolve a sub-percent true difference through machine
  noise; the A/B min-ratio is still reported alongside as a sanity
  check.
* **retune_slice** — latency of one bounded
  ``TuningSession.step(slice)`` on a session seeded from the deployed
  artifact: the unit of background work the controller interleaves
  with traffic.
* **hot_swap** — latency of the atomic artifact swap itself (the only
  moment serving and retuning touch), plus a correctness check that a
  swapped engine really serves the new configuration.

Smoke-sized by default; set ``REPRO_BENCH_FULL=1`` for more repeats.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from conftest import FULL, run_once

from repro.autotuner import Autotuner, ProgramTestHarness, TunerSettings
from repro.serving import (
    ServeRequest,
    ServingEngine,
    ServingTelemetry,
    TunedArtifact,
)
from repro.suite import get_benchmark

REQUEST_COUNT = 200 if FULL else 40
REPEATS = 7 if FULL else 5
SLICE_TRIALS = 24
SERVE_N = 7.0
OVERHEAD_LIMIT_PCT = 5.0
TUNE_SETTINGS = TunerSettings(input_sizes=(7.0,), rounds_per_size=1,
                              mutation_attempts=4, min_trials=2,
                              max_trials=4, seed=13, initial_random=1,
                              guided_max_evaluations=6,
                              accuracy_confidence=None)


def _tuned_result():
    spec = get_benchmark("poisson")
    program, _ = spec.compile()
    harness = ProgramTestHarness(program, spec.generate, base_seed=5,
                                 cost_limit=spec.cost_limit)
    result = Autotuner(program, harness, TUNE_SETTINGS).tune()
    return spec, program, harness, result


def _requests(spec, count):
    accuracies = [1.0, 3.0, 5.0, None, 2.0]
    requests = []
    for i in range(count):
        rng = np.random.default_rng(3000 + i)
        requests.append(ServeRequest(
            program="poisson", inputs=spec.generate(int(SERVE_N), rng),
            n=SERVE_N, accuracy=accuracies[i % len(accuracies)],
            seed=i % 3))
    return requests


def _serve_elapsed(tuned, requests, telemetry):
    engine = ServingEngine(telemetry=telemetry)
    engine.register("poisson", tuned)
    engine.serve(requests[:2])  # warm caches
    start = time.perf_counter()
    responses = engine.serve(requests)
    elapsed = time.perf_counter() - start
    assert all(r.ok for r in responses)
    return elapsed


def test_adaptive_loop_costs(benchmark):
    spec, program, harness, result = _tuned_result()
    artifact = TunedArtifact.from_json(result.to_artifact().to_json())
    tuned = artifact.to_tuned(program)
    requests = _requests(spec, REQUEST_COUNT)

    def run():
        rows = []

        # 1. Steady-state overhead.  Serve cost and telemetry cost are
        #    measured separately (each min-of-repeats, so load spikes
        #    are filtered) and gated on their ratio; the on/off A/B is
        #    reported as a sanity line but cannot gate — its noise
        #    floor exceeds the true sub-percent difference.
        plain_times, telemetry_times = [], []
        for _ in range(3):
            plain_times.append(
                _serve_elapsed(tuned, requests, telemetry=None))
            telemetry_times.append(
                _serve_elapsed(tuned, requests,
                               telemetry=ServingTelemetry()))
        serve_per_request = min(plain_times) / REQUEST_COUNT

        # Replay exactly what the engine buffers per settled response
        # (see ServingEngine._finish_ok) through record_batch, enough
        # times to time it precisely, window evictions included.
        probe = ServingEngine(telemetry=ServingTelemetry())
        probe.register("poisson", tuned)
        responses = probe.serve(requests)
        entries = [(r.program, r.bin_target, r.ok,
                    r.achieved_accuracy, r.escalations, r.fallback,
                    r.latency) for r in responses]
        record_times = []
        for _ in range(REPEATS):
            telemetry = ServingTelemetry()
            start = time.perf_counter()
            for _ in range(50):
                telemetry.record_batch(entries)
            record_times.append((time.perf_counter() - start)
                                / (50 * len(entries)))
        record_per_response = min(record_times)
        overhead_pct = 100.0 * record_per_response / serve_per_request
        rows.append({
            "bench": "adaptive", "metric": "telemetry_overhead",
            "requests": REQUEST_COUNT, "repeats": REPEATS,
            "serve_us_per_request":
                round(serve_per_request * 1e6, 3),
            "record_us_per_response":
                round(record_per_response * 1e6, 4),
            "overhead_pct": round(overhead_pct, 4),
            "ab_min_ratio": round(min(telemetry_times)
                                  / min(plain_times), 4),
            "limit_pct": OVERHEAD_LIMIT_PCT,
        })

        # 2. Retune-slice latency on a session seeded from the
        #    deployed artifact (the controller's unit of work).
        session = Autotuner(program, harness, TUNE_SETTINGS).session(
            seed_configs=tuple(tuned.bin_configs.values()))
        slice_times = []
        while not session.done:
            start = time.perf_counter()
            session.step(SLICE_TRIALS)
            slice_times.append(time.perf_counter() - start)
        rows.append({
            "bench": "adaptive", "metric": "retune_slice",
            "slice_trials": SLICE_TRIALS,
            "slices": len(slice_times),
            "p50_ms": round(float(np.median(slice_times)) * 1e3, 3),
            "max_ms": round(max(slice_times) * 1e3, 3),
            "total_trials": session.result().trials_run,
        })

        # 3. Hot-swap latency (and correctness of the swapped engine).
        candidate = session.result().tuned_program()
        engine = ServingEngine()
        engine.register("poisson", tuned)
        engine.serve(requests[:2])
        swap_times = []
        current = tuned
        for _ in range(REPEATS * 2):
            nxt = candidate if current is tuned else tuned
            start = time.perf_counter()
            engine.hot_swap("poisson", nxt)
            swap_times.append(time.perf_counter() - start)
            current = nxt
        assert engine.program_for("poisson") is current
        assert engine.serve_one(requests[0]).ok
        rows.append({
            "bench": "adaptive", "metric": "hot_swap",
            "swaps": len(swap_times),
            "p50_us": round(float(np.median(swap_times)) * 1e6, 2),
            "max_us": round(max(swap_times) * 1e6, 2),
        })
        return rows

    rows = run_once(benchmark, run)
    harness.close()
    print(f"\nAdaptive-loop costs over {REQUEST_COUNT} Poisson requests "
          f"({os.cpu_count()} cpus):")
    for row in rows:
        print("BENCH_JSON " + json.dumps(row, sort_keys=True))
    overhead = next(r for r in rows
                    if r["metric"] == "telemetry_overhead")
    assert overhead["overhead_pct"] < OVERHEAD_LIMIT_PCT, (
        f"telemetry overhead {overhead['overhead_pct']:.2f}% exceeds "
        f"the {OVERHEAD_LIMIT_PCT:.0f}% serve-path budget")
    slices = next(r for r in rows if r["metric"] == "retune_slice")
    assert slices["slices"] > 1  # the session really ran in slices
