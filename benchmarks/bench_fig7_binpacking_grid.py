"""Figure 7: best bin packing algorithm per (accuracy, input size).

Paper findings reproduced as assertions:

* each region of the accuracy/size grid is won by a different
  algorithm (several distinct winners, no single best);
* NextFit wins only at loose accuracies;
* the decreasing-fit family owns the tightest accuracy levels at
  large sizes;
* ModifiedFirstFitDecreasing, despite the best provable bound (71/60),
  almost never wins empirically ("never the best performing algorithm
  when a probabilistic bound of worse than 1.07x accuracy is desired").
"""

import os

from conftest import run_once

from repro.experiments.figure7 import run_figure7

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"
SIZES = (8, 32, 128, 512, 2048, 8192) if FULL else (8, 32, 128, 512)


def test_fig7_best_algorithm_grid(benchmark):
    result = run_once(benchmark,
                      lambda: run_figure7(sizes=SIZES, trials=5, seed=3))
    print()
    print(result.render())

    winners = result.distinct_winners()
    assert len(winners) >= 3, "the grid must be contested"

    largest = SIZES[-1]
    # NextFit wins the loosest level at large sizes (it is the only
    # O(n) algorithm and its ratio ~1.3 meets 1.4/1.5).
    assert result.winners[(1.5, largest)] == "NextFit"
    # The tightest met level at the largest size belongs to the
    # decreasing family.
    for accuracy in result.accuracies:
        winner = result.winners[(accuracy, largest)]
        if winner is not None:
            assert winner.endswith("Decreasing")
            break
    # MFFD never wins at accuracies looser than 1.07 (paper Sec 6.4).
    loose_mffd_wins = [
        (accuracy, n)
        for (accuracy, n), winner in result.winners.items()
        if winner == "ModifiedFirstFitDecreasing" and accuracy > 1.07]
    assert not loose_mffd_wins
