"""Figure 6(b): Clustering speedups per accuracy level and input size.

Paper: clustering speedups range from 1.1x to ~8x — relaxed accuracy
admits fewer clusters, cheap random seeding and a single Lloyd
iteration.
"""

from conftest import run_once

from repro.experiments.figure6 import run_figure6


def test_fig6b_clustering(benchmark, experiment_settings):
    result = run_once(benchmark,
                      lambda: run_figure6("fig6b", experiment_settings))
    print()
    print(result.render())

    n = result.sizes[-1]
    loosest = result.bins[0]
    speedup = result.speedup(loosest, n)
    if speedup == speedup:  # tuned
        assert speedup >= 1.0
