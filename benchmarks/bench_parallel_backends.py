"""Trial-execution backend throughput on the Poisson suite.

Two measurements, both against the paper's observation that "the
dominant time requirement of our autotuner is testing candidate
algorithms" (Section 5.5.1):

1. raw backend throughput — one population-sized batch of Poisson
   trials through serial / thread / process backends (plus a
   warm-cache replay), reporting trials/sec and speedup over serial;
2. tuner wall-clock — a full (scaled-down) autotuning run per backend,
   reporting wall-clock, trials/sec and the bit-identical frontier.

Parallel speedups require parallel hardware: the process-backend
throughput assertion is gated on ``os.cpu_count() >= 2`` so a 1-core
CI box measures and records honestly instead of failing on physics.
The warm-cache row demonstrates a >1 trials/sec gain on any machine —
result reuse needs no cores.
"""

from __future__ import annotations

import os
import time

from conftest import run_once

from repro.autotuner import Autotuner, ProgramTestHarness, TunerSettings
from repro.autotuner.candidate import Candidate
from repro.rng import generator_for
from repro.runtime.backends import (
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    TrialCache,
)
from repro.suite import get_benchmark

MULTICORE = (os.cpu_count() or 1) >= 2
WORKERS = max(2, min(4, os.cpu_count() or 1))
BATCH_N = 31.0
TRIALS_PER_CANDIDATE = 4
POPULATION = 16
TUNE_SIZES = (7.0, 15.0, 31.0)


def _poisson_harness(backend=None, cache=None):
    spec = get_benchmark("poisson")
    program, _ = spec.compile()
    harness = ProgramTestHarness(program, spec.generate, base_seed=5,
                                 cost_limit=spec.cost_limit,
                                 backend=backend, cache=cache)
    return spec, program, harness


def _batch_requests(program, harness):
    rng = generator_for(17, "bench-parallel", "configs")
    candidates = [Candidate(program.random_config(rng))
                  for _ in range(POPULATION)]
    return [harness.build_request(candidate, BATCH_N, index)
            for candidate in candidates
            for index in range(TRIALS_PER_CANDIDATE)]


def test_backend_batch_throughput(benchmark):
    spec, program, harness = _poisson_harness()
    requests = _batch_requests(program, harness)
    backends = [SerialBackend(), ThreadPoolBackend(max_workers=WORKERS),
                ProcessPoolBackend(max_workers=WORKERS)]

    def run():
        rows = {}
        reference = None
        for backend in backends:
            backend.run_batch(program, requests[:2],
                              cost_limit=spec.cost_limit)  # warm pools
            start = time.perf_counter()
            outcomes = backend.run_batch(program, requests,
                                         cost_limit=spec.cost_limit)
            elapsed = time.perf_counter() - start
            backend.close()
            key = [(o.objective, o.accuracy, o.failed) for o in outcomes]
            if reference is None:
                reference = key
            assert key == reference, f"{backend.name} diverged from serial"
            rows[backend.name] = len(requests) / elapsed
        # Warm-cache replay: fill the TrialCache with one cold pass,
        # then measure the all-hits replay.
        _, _, cached_harness = _poisson_harness(cache=TrialCache())
        cached_harness.run_requests(requests)
        executed_cold = cached_harness.trials_executed
        start = time.perf_counter()
        cached = cached_harness.run_requests(requests)
        elapsed = time.perf_counter() - start
        assert [(o.objective, o.accuracy, o.failed) for o in cached] == \
            reference
        assert cached_harness.trials_executed == executed_cold  # all hits
        rows["cached"] = len(requests) / elapsed
        return rows

    rows = run_once(benchmark, run)
    serial_tps = rows["serial"]
    print(f"\nbatch of {POPULATION * TRIALS_PER_CANDIDATE} Poisson "
          f"trials at n={BATCH_N:g} ({os.cpu_count()} cpus):")
    for name, tps in rows.items():
        print(f"  {name:>8}: {tps:8.1f} trials/s  "
              f"(speedup x{tps / serial_tps:.2f})")
    # Result reuse beats re-execution on any hardware.
    assert rows["cached"] - serial_tps > 1.0
    if MULTICORE:
        # With real cores, process-parallel execution must out-run
        # serial by more than one trial per second.
        assert rows["process"] - serial_tps > 1.0


def test_tuner_wall_clock_per_backend(benchmark):
    settings = TunerSettings(input_sizes=TUNE_SIZES, rounds_per_size=1,
                             mutation_attempts=6, min_trials=2,
                             max_trials=4, seed=13, initial_random=2,
                             guided_max_evaluations=8,
                             accuracy_confidence=None)
    backends = {
        "serial": lambda: SerialBackend(),
        "thread": lambda: ThreadPoolBackend(max_workers=WORKERS),
        "process": lambda: ProcessPoolBackend(max_workers=WORKERS),
    }

    def run():
        rows = {}
        frontiers = {}
        for name, factory in backends.items():
            _, program, harness = _poisson_harness(backend=factory())
            with harness:
                start = time.perf_counter()
                result = Autotuner(program, harness, settings).tune()
                elapsed = time.perf_counter() - start
            rows[name] = (elapsed, result.trials_run / elapsed)
            frontiers[name] = result.frontier()
        assert frontiers["thread"] == frontiers["serial"]
        assert frontiers["process"] == frontiers["serial"]
        return rows

    rows = run_once(benchmark, run)
    serial_wall, _ = rows["serial"]
    print(f"\nPoisson autotuning (sizes {TUNE_SIZES}, "
          f"{os.cpu_count()} cpus):")
    for name, (wall, tps) in rows.items():
        print(f"  {name:>8}: {wall:6.2f}s wall  {tps:7.1f} trials/s  "
              f"(speedup x{serial_wall / wall:.2f})")
